// Checkpointing and crash recovery.
//
// Checkpoints are split into a pure-CPU *capture* (under the flush lock,
// GenStamp-asserted atomic) and an *image write* (multi-block region
// write). The fuzzy path (Lfs::Checkpoint) releases the flush lock between
// the two so transactions keep committing during the write; the locked
// path (format, unmount, periodic, cleaner) keeps the lock across both.
// The dual regions alternate, so a crash mid-write falls back to the
// other region — provided at most one region write is ever in flight,
// which the checkpoint_write_in_flight_ flag enforces.
//
// Recovery loads the newer valid checkpoint, rolls the log forward along
// the summary chain (staging transaction-tagged chunks until their commit
// marker), then rebuilds the usage table exactly and writes a fresh
// checkpoint. The roll-forward is pipelined: the scanner walks the chain
// with timed reads while replay workers — one SimEnv process per
// partition — apply inode-map updates. Updates are partitioned by inode-
// map block, so two updates that touch the same map entry always land in
// the same partition's FIFO queue in log order: the recovered state is
// byte-identical to a sequential replay, on either execution backend.
#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "check/gen_stamp.h"
#include "lfs/lfs.h"

namespace lfstx {

// ------------------------------------------------------------ checkpoints --

Status Lfs::CaptureCheckpointLocked(CheckpointData* cp, BlockAddr* region) {
  // Pure CPU under the flush lock: no yield point, so the snapshot is one
  // atomic step even with transactions mid-flight — the fuzzy-checkpoint
  // invariant. The GenStamp proves it.
  GenStamp<Lfs> head(this);
  cp->seq = ++checkpoint_seq_;
  cp->timestamp = env_->Now();
  cp->cur_segment = cur_seg_;
  cp->cur_offset = cur_off_;
  cp->cur_generation = cur_gen_;
  cp->next_write_seq = next_write_seq_;
  cp->imap_addrs = imap_.block_addrs();
  cp->usage_bytes.resize(usage_.SerializedBytes());
  usage_.Serialize(cp->usage_bytes.data());
  *region = checkpoint_to_a_ ? geo_.checkpoint_a : geo_.checkpoint_b;
  LFSTX_TRACE(env_->tracer(), TraceCat::kCheckpoint, "checkpoint",
              {"seq", cp->seq}, {"region", checkpoint_to_a_ ? "A" : "B"},
              {"seg", cur_seg_}, {"off", cur_off_},
              {"blocks", geo_.checkpoint_blocks});
  checkpoint_to_a_ = !checkpoint_to_a_;
  segments_since_checkpoint_ = 0;
  last_cp_write_seq_ = next_write_seq_;
  last_cp_seg_ = cur_seg_;
  last_cp_off_ = cur_off_;
  checkpoint_write_in_flight_ = true;
  LFSTX_GEN_CHECK(head,
                  "log head moved during a checkpoint capture — the capture "
                  "must be a single atomic step");
  return Status::OK();
}

Status Lfs::WriteCheckpointImage(const CheckpointData& cp, BlockAddr region) {
  // Checkpoint region writes are attributed to the checkpoint cause even
  // when a foreground commit (MaybePeriodicCheckpoint) triggers them.
  ProfCauseScope prof_cause(env_->profiler(), IoCause::kCheckpoint);
  std::vector<char> buf(static_cast<size_t>(geo_.checkpoint_blocks) *
                        kBlockSize);
  cp.Encode(buf.data(), geo_.checkpoint_blocks);
  env_->log_econ()->ChargeBlocks(LogByteCat::kCheckpoint,
                                 geo_.checkpoint_blocks);
  Status s = disk_->Write(region, geo_.checkpoint_blocks, buf.data());
  checkpoint_write_in_flight_ = false;
  if (s.ok()) lfs_stats_.checkpoints++;
  return s;
}

Status Lfs::WriteCheckpointLocked() {
  if (checkpoint_write_in_flight_) {
    // A fuzzy image write is on the platter right now. Starting a second
    // write to the other region would let a crash tear both regions at
    // once; the in-flight image already bounds recovery, so skip.
    lfs_stats_.checkpoints_skipped++;
    return Status::OK();
  }
  if (CheckpointIsCleanLocked()) {
    lfs_stats_.checkpoints_skipped++;
    return Status::OK();
  }
  CheckpointData cp;
  BlockAddr region = 0;
  LFSTX_RETURN_IF_ERROR(CaptureCheckpointLocked(&cp, &region));
  // The caller holds the flush lock, so no one may append to the log (or
  // advance the head) while the checkpoint image is being written — the
  // image's (seg, off, seq) snapshot would silently go stale.
  GenStamp<Lfs> head(this);
  Status s = WriteCheckpointImage(cp, region);
  LFSTX_GEN_CHECK(head,
                  "log head moved during a checkpoint write — the flush "
                  "lock's exclusion was violated");
  return s;
}

// --------------------------------------------------------------- recovery --

namespace {
// Decode one inode block and hand each valid inode to `fn`.
template <typename Fn>
void ForEachInode(const char* block, Fn fn) {
  for (uint32_t slot = 0; slot < kInodesPerBlock; slot++) {
    DiskInode d;
    DecodeInode(block, slot, &d);
    if (d.inum != kInvalidInode &&
        d.file_type() != FileType::kFree) {
      fn(d);
    }
  }
}

// One inode-map update learned from the scan, routed to a replay
// partition by the imap block it touches (kInode: BlockOf(inum); kImap:
// the map block itself). Same map block -> same partition -> FIFO
// preserves log order for every entry both updates cover.
struct ReplayItem {
  BlockKind kind;
  BlockAddr addr = 0;
  InodeNum inum = kInvalidInode;  // kInode: one decoded inode
  uint32_t version = 0;           // kInode
  uint64_t lblock = 0;            // kImap: map block index
  std::vector<char> bytes;        // kImap: block image
};

struct ReplayPartition {
  explicit ReplayPartition(SimEnv* env) : ready(env) {}
  std::deque<ReplayItem> q;
  WaitQueue ready;
  bool done = false;  // scanner reached end of chain, drain and exit
};

// Heap-allocated and captured by shared_ptr value in the workers, so a
// scanner that bails out on shutdown leaves nothing dangling.
struct ReplayShared {
  ReplayShared(SimEnv* env, uint32_t n) : done_q(env) {
    parts.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
      parts.push_back(std::make_unique<ReplayPartition>(env));
    }
  }
  std::vector<std::unique_ptr<ReplayPartition>> parts;
  uint32_t running = 0;
  WaitQueue done_q;  // scanner waits here for workers to drain
};
}  // namespace

Status Lfs::RecoverFromCheckpointAndRollForward() {
  // Recovery I/O (and the replay workers' CPU) bills to the checkpoint
  // cause: it is the price of the checkpoint interval chosen.
  ProfCauseScope prof_cause(env_->profiler(), IoCause::kCheckpoint);
  recovery_stats_ = RecoveryStats();
  SimTime recover_start = env_->Now();

  // ---- 1. pick the newer valid checkpoint ----
  std::vector<char> buf(static_cast<size_t>(geo_.checkpoint_blocks) *
                        kBlockSize);
  CheckpointData best;
  bool have = false;
  bool best_is_a = true;
  for (bool is_a : {true, false}) {
    if (force_checkpoint_region_ == 0 && !is_a) continue;
    if (force_checkpoint_region_ == 1 && is_a) continue;
    LFSTX_RETURN_IF_ERROR(disk_->Read(is_a ? geo_.checkpoint_a
                                           : geo_.checkpoint_b,
                                      geo_.checkpoint_blocks, buf.data()));
    auto r = CheckpointData::Decode(buf.data(), geo_.checkpoint_blocks);
    if (r.ok() && (!have || r.value().seq > best.seq)) {
      best = r.take();
      have = true;
      best_is_a = is_a;
    }
  }
  force_checkpoint_region_ = -1;
  if (!have) {
    return Status::Corruption("no valid checkpoint (disk never formatted?)");
  }
  checkpoint_seq_ = best.seq;
  checkpoint_to_a_ = !best_is_a;  // write the next one to the other region
  recovery_stats_.checkpoint_seq = best.seq;

  // ---- 2. restore checkpointed state ----
  usage_.Deserialize(best.usage_bytes.data());
  imap_.block_addrs() = best.imap_addrs;
  char block[kBlockSize];
  for (uint32_t idx = 0; idx < imap_.nblocks(); idx++) {
    if (imap_.block_addrs()[idx] != 0) {
      LFSTX_RETURN_IF_ERROR(disk_->Read(imap_.block_addrs()[idx], 1, block));
      imap_.DecodeBlock(idx, block);
    }
  }
  imap_.ClearDirty();
  cur_seg_ = best.cur_segment;
  cur_off_ = best.cur_offset;
  cur_gen_ = best.cur_generation;
  log_head_gen_++;
  next_write_seq_ = best.next_write_seq;
  // The on-disk image we just restored *is* the state of the log head:
  // WriteCheckpointLocked at the end of recovery skips if nothing rolled
  // forward.
  last_cp_write_seq_ = best.next_write_seq;
  last_cp_seg_ = best.cur_segment;
  last_cp_off_ = best.cur_offset;
  LFSTX_TRACE(env_->tracer(), TraceCat::kRecovery, "recovery_begin",
              {"checkpoint_seq", best.seq},
              {"region", best_is_a ? "A" : "B"}, {"seg", cur_seg_},
              {"off", cur_off_}, {"next_write_seq", next_write_seq_});

  // ---- 3. roll forward along the summary chain (pipelined) ----
  uint32_t nparts = std::max<uint32_t>(1, options_.recovery_partitions);
  recovery_stats_.partitions = nparts;
  SimTime scan_start = env_->Now();

  // Applies one item in the calling process, charging its CPU cost.
  auto apply_item = [this](const ReplayItem& u) {
    uint64_t cost;
    if (u.kind == BlockKind::kInode) {
      imap_.Set(u.inum, u.addr, u.version);
      cost = std::max<uint64_t>(
          1, env_->costs().segment_block_cpu_us / kInodesPerBlock);
    } else {
      imap_.DecodeBlock(static_cast<uint32_t>(u.lblock), u.bytes.data());
      imap_.block_addrs()[u.lblock] = u.addr;
      cost = env_->costs().segment_block_cpu_us;
    }
    recovery_stats_.apply_items++;
    recovery_stats_.apply_us += cost;
    env_->Consume(cost);
  };

  // LFSTX_YIELD_OK(roll-forward runs inside Mount, before any other process can reach this Lfs)
  auto shared = std::make_shared<ReplayShared>(env_, nparts);
  if (nparts > 1) {
    for (uint32_t p = 0; p < nparts; p++) {
      shared->running++;
      env_->Spawn("lfs.replay." + std::to_string(p),
                  [this, shared, apply_item, p] {
                    ProfCauseScope cause(env_->profiler(),
                                         IoCause::kCheckpoint);
                    ReplayPartition* part = shared->parts[p].get();
                    while (!env_->stop_requested()) {
                      if (!part->q.empty()) {
                        ReplayItem u = std::move(part->q.front());
                        part->q.pop_front();
                        apply_item(u);
                        continue;
                      }
                      if (part->done) break;
                      if (part->ready.Sleep() == WakeReason::kStopped) break;
                    }
                    shared->running--;
                    shared->done_q.WakeAll();
                  });
    }
  }

  // Route an update to its partition's FIFO (or apply inline when
  // sequential). kInode updates explode into per-inode triples so the
  // partition key is the imap block each one actually touches.
  auto dispatch = [&](BlockKind kind, BlockAddr addr, uint64_t lblock,
                      const char* bytes) {
    if (kind == BlockKind::kInode) {
      ForEachInode(bytes, [&](const DiskInode& d) {
        ReplayItem u;
        u.kind = BlockKind::kInode;
        u.addr = addr;
        u.inum = d.inum;
        u.version = d.version;
        if (nparts > 1) {
          uint32_t p = (d.inum / kImapEntriesPerBlock) % nparts;
          shared->parts[p]->q.push_back(std::move(u));
          shared->parts[p]->ready.WakeAll();
        } else {
          apply_item(u);
        }
      });
    } else {
      ReplayItem u;
      u.kind = BlockKind::kImap;
      u.addr = addr;
      u.lblock = lblock;
      u.bytes.assign(bytes, bytes + kBlockSize);
      if (nparts > 1) {
        uint32_t p = static_cast<uint32_t>(lblock) % nparts;
        shared->parts[p]->q.push_back(std::move(u));
        shared->parts[p]->ready.WakeAll();
      } else {
        apply_item(u);
      }
    }
  };

  // Chunks of a transaction stage here (as raw block images) until the
  // chunk carrying the commit marker dispatches them in log order.
  struct Staged {
    BlockKind kind;
    BlockAddr addr;
    uint64_t lblock;
    std::vector<char> bytes;
  };
  std::map<TxnId, std::vector<Staged>> staged;

  Status scan_status = Status::OK();
  BlockAddr next = SegBase(cur_seg_) + cur_off_;  // LFSTX_YIELD_OK(Mount is exclusive: nothing else mutates the log head yet)
  uint64_t expect_seq = next_write_seq_;  // LFSTX_YIELD_OK(Mount is exclusive: nothing else mutates the log head yet)
  std::vector<char> seg_buf(
      static_cast<size_t>(options_.segment_blocks) * kBlockSize);
  while (next != kInvalidBlock && next >= geo_.seg_start &&
         next < disk_->num_blocks()) {
    uint32_t seg = SegOf(next);
    uint32_t off = static_cast<uint32_t>(next - SegBase(seg));
    if (off + 1 >= options_.segment_blocks) break;
    scan_status = disk_->Read(next, 1, seg_buf.data());
    if (!scan_status.ok()) break;
    auto npeek = Summary::PeekNBlocks(seg_buf.data());
    if (!npeek.ok()) break;
    uint32_t n = npeek.value();
    if (off + 1 + n > options_.segment_blocks) break;
    scan_status = disk_->Read(next + 1, n, seg_buf.data() + kBlockSize);
    if (!scan_status.ok()) break;
    // Parsing a chunk costs what the cleaner charges for the same work.
    env_->Consume(env_->costs().segment_block_cpu_us * (1 + n));
    auto sres = Summary::Decode(seg_buf.data(), seg_buf.data() + kBlockSize,
                                n);
    if (!sres.ok()) {                            // torn write: end of log
      recovery_stats_.torn_chunks++;
      LFSTX_TRACE(env_->tracer(), TraceCat::kRecovery, "recovery_torn_chunk",
                  {"addr", next}, {"nblocks", n});
      break;
    }
    Summary s = sres.take();
    if (s.write_seq != expect_seq) {             // stale chunk: end of log
      recovery_stats_.stale_chunks++;
      LFSTX_TRACE(env_->tracer(), TraceCat::kRecovery, "recovery_stale_chunk",
                  {"addr", next}, {"found_seq", s.write_seq},
                  {"expect_seq", expect_seq});
      break;
    }
    LFSTX_TRACE(env_->tracer(), TraceCat::kRecovery, "recovery_chunk",
                {"addr", next}, {"nblocks", n}, {"write_seq", s.write_seq},
                {"txn", s.txn}, {"commit", s.txn_commit});
    recovery_stats_.payload_blocks += n;

    if (off == 0) {
      // Entering a segment the chain activated after the checkpoint.
      usage_.SetRaw(seg, SegState::kDirty, usage_.live(seg), s.generation,
                    s.timestamp);
    }
    for (uint32_t i = 0; i < s.nblocks(); i++) {
      const SummaryEntry& e = s.entries[i];
      BlockAddr addr = next + 1 + i;
      BlockKind kind = static_cast<BlockKind>(e.kind);
      if (kind != BlockKind::kInode && kind != BlockKind::kImap) continue;
      if (s.txn != kNoTxn) {
        Staged u;
        u.kind = kind;
        u.addr = addr;
        u.lblock = e.lblock;
        u.bytes.assign(seg_buf.data() + (1ull + i) * kBlockSize,
                       seg_buf.data() + (2ull + i) * kBlockSize);
        staged[s.txn].push_back(std::move(u));
      } else {
        dispatch(kind, addr, e.lblock,
                 seg_buf.data() + (1ull + i) * kBlockSize);
      }
    }
    if (s.txn != kNoTxn && s.txn_commit) {
      for (const Staged& u : staged[s.txn]) {
        dispatch(u.kind, u.addr, u.lblock, u.bytes.data());
      }
      staged.erase(s.txn);
    }
    expect_seq++;
    cur_seg_ = seg;
    cur_off_ = off + 1 + n;
    cur_gen_ = s.generation;
    log_head_gen_++;
    next = s.next_addr;
  }
  next_write_seq_ = expect_seq;
  recovery_stats_.chunks = expect_seq - best.next_write_seq;
  recovery_stats_.discarded_txns = staged.size();

  // Drain the replay pipeline: workers exit once their queue is empty and
  // done is set. After a shutdown request their Sleep returns kStopped
  // immediately, so bail instead of spinning; workers own `shared` via the
  // shared_ptr and exit on their own without touching this Lfs.
  bool stopped = false;
  if (nparts > 1) {
    for (auto& part : shared->parts) {
      part->done = true;
      part->ready.WakeAll();
    }
    while (shared->running > 0) {
      if (shared->done_q.Sleep() == WakeReason::kStopped) {
        stopped = true;
        break;
      }
    }
  }
  recovery_stats_.scan_us = env_->Now() - scan_start;
  if (stopped) return Status::Busy("simulation stopped during replay");
  LFSTX_RETURN_IF_ERROR(scan_status);

  // Chunks of transactions whose commit marker never made it to disk are
  // discarded: the transaction atomically never happened.
  LFSTX_TRACE(env_->tracer(), TraceCat::kRecovery, "recovery_end",
              {"chunks_applied", recovery_stats_.chunks},
              {"discarded_txns", static_cast<uint64_t>(staged.size())},
              {"seg", cur_seg_}, {"off", cur_off_});
  staged.clear();

  // ---- 4. exact usage + inode-block refcount rebuild ----
  LFSTX_RETURN_IF_ERROR(RebuildUsage());

  // ---- 5. persist the recovered state ----
  Status s = Status::OK();
  {
    SimMutexGuard g(&flush_lock_);
    if (!g.locked()) return Status::Busy("stopped during recovery");
    flush_owner_ = SimEnv::Current();
    if (!imap_.DirtyBlocks().empty()) {
      // Roll-forward learned inode locations that the on-disk imap blocks
      // don't reflect yet; push them into the log before checkpointing.
      s = FlushLocked(kNoTxn);
    }
    if (s.ok()) s = WriteCheckpointLocked();
    flush_owner_ = nullptr;
  }
  recovery_stats_.total_us = env_->Now() - recover_start;

  // Mirror into metrics so tests and benches can assert on recovery
  // behavior without reaching into the Lfs object.
  MetricsRegistry* m = env_->metrics();
  auto set = [&](const char* name, const char* unit, const char* help,
                 uint64_t v) { m->GetCounter(name, unit, help)->Set(v); };
  set("recovery.checkpoint_seq", "seq", "checkpoint recovery restored from",
      recovery_stats_.checkpoint_seq);
  set("recovery.chunks", "count", "chunks replayed off the summary chain",
      recovery_stats_.chunks);
  set("recovery.payload_blocks", "blocks", "payload blocks scanned",
      recovery_stats_.payload_blocks);
  set("recovery.apply_items", "count", "inode-map updates applied",
      recovery_stats_.apply_items);
  set("recovery.discarded_txns", "count",
      "staged transactions with no commit marker",
      recovery_stats_.discarded_txns);
  set("recovery.torn_chunks", "count", "chunks rejected by CRC (torn write)",
      recovery_stats_.torn_chunks);
  set("recovery.stale_chunks", "count",
      "chunks rejected by write_seq (stale data)",
      recovery_stats_.stale_chunks);
  set("recovery.partitions", "count", "replay partitions used",
      recovery_stats_.partitions);
  set("recovery.scan_us", "us", "virtual time walking the chain + drain",
      recovery_stats_.scan_us);
  set("recovery.apply_us", "us", "virtual CPU applying inode-map updates",
      recovery_stats_.apply_us);
  set("recovery.total_us", "us", "virtual time for the whole recovery",
      recovery_stats_.total_us);
  return s;
}

Status Lfs::RebuildUsage() {
  std::vector<uint32_t> live(geo_.nsegments, 0);
  inode_block_refs_.clear();
  char block[kBlockSize];
  char child[kBlockSize];

  auto count = [&](BlockAddr addr) {
    if (addr >= geo_.seg_start && addr < disk_->num_blocks()) {
      live[SegOf(addr)]++;
    }
  };

  for (InodeNum inum = 1; inum <= options_.max_inodes; inum++) {
    const ImapEntry& e = imap_.Get(inum);
    if (e.inode_addr == 0) continue;
    if (inode_block_refs_[e.inode_addr]++ == 0) count(e.inode_addr);
    disk_->RawRead(e.inode_addr, 1, block);
    DiskInode d;
    bool found = false;
    for (uint32_t slot = 0; slot < kInodesPerBlock && !found; slot++) {
      DecodeInode(block, slot, &d);
      if (d.inum == inum && d.file_type() != FileType::kFree) found = true;
    }
    if (!found) continue;
    for (uint32_t i = 0; i < kNumDirect; i++) {
      if (d.direct[i] != 0) count(d.direct[i]);
    }
    auto walk_leaf = [&](BlockAddr leaf_addr) {
      count(leaf_addr);
      disk_->RawRead(leaf_addr, 1, child);
      for (uint32_t i = 0; i < kPtrsPerBlock; i++) {
        uint64_t a;
        memcpy(&a, child + i * 8, 8);
        if (a != 0) count(a);
      }
    };
    if (d.indirect != 0) walk_leaf(d.indirect);
    if (d.double_indirect != 0) {
      count(d.double_indirect);
      char root[kBlockSize];
      disk_->RawRead(d.double_indirect, 1, root);
      for (uint32_t i = 0; i < kPtrsPerBlock; i++) {
        uint64_t a;
        memcpy(&a, root + i * 8, 8);
        if (a != 0) walk_leaf(a);
      }
    }
  }
  for (BlockAddr a : imap_.block_addrs()) {
    if (a != 0) count(a);
  }

  for (uint32_t seg = 0; seg < geo_.nsegments; seg++) {
    SegState state;
    if (seg == cur_seg_) {
      state = SegState::kActive;
    } else if (live[seg] > 0) {
      state = SegState::kDirty;
    } else {
      state = SegState::kClean;
    }
    usage_.SetRaw(seg, state, live[seg], usage_.generation(seg),
                  usage_.write_time(seg));
  }
  return Status::OK();
}

}  // namespace lfstx
