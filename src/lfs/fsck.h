// Deep consistency checker for the log-structured file system — the kind
// of tool a real release ships. Walks the checkpoint, inode map, every
// inode and its block map, and cross-checks:
//   * every mapped block address lands inside the segment area;
//   * no two mappings claim the same disk block;
//   * the segment usage table's live counts match a full recount;
//   * every imap entry points at a block that really contains that inode
//     at the recorded version;
//   * directory entries reference live inodes.
//
// Registered as the "lfs" checker in check/registry.cc; callable directly
// when only an Lfs is at hand. Counters: files, directories, mapped_blocks.
#ifndef LFSTX_LFS_FSCK_H_
#define LFSTX_LFS_FSCK_H_

#include "check/report.h"
#include "lfs/lfs.h"

namespace lfstx {

/// Run the checker against a *mounted, quiescent* file system (all dirty
/// state flushed; typically right after Mount or SyncAll + Checkpoint).
Result<CheckReport> CheckLfs(Lfs* fs);

}  // namespace lfstx

#endif  // LFSTX_LFS_FSCK_H_
