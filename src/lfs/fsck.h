// Offline consistency checker for the log-structured file system — the
// kind of tool a real release ships. Walks the checkpoint, inode map,
// every inode and its block map, and cross-checks:
//   * every mapped block address lands inside the segment area;
//   * no two mappings claim the same disk block;
//   * the segment usage table's live counts match a full recount;
//   * every imap entry points at a block that really contains that inode
//     at the recorded version;
//   * directory entries reference live inodes.
#ifndef LFSTX_LFS_FSCK_H_
#define LFSTX_LFS_FSCK_H_

#include <string>
#include <vector>

#include "lfs/lfs.h"

namespace lfstx {

/// \brief Result of a consistency check.
struct FsckReport {
  bool clean = true;
  std::vector<std::string> problems;
  uint64_t files = 0;
  uint64_t directories = 0;
  uint64_t mapped_blocks = 0;

  void Problem(std::string p) {
    clean = false;
    problems.push_back(std::move(p));
  }
  std::string ToString() const;
};

/// Run the checker against a *mounted, quiescent* file system (all dirty
/// state flushed; typically right after Mount or SyncAll + Checkpoint).
Result<FsckReport> CheckLfs(Lfs* fs);

}  // namespace lfstx

#endif  // LFSTX_LFS_FSCK_H_
