#include "lfs/inode_map.h"

#include <cassert>
#include <cstring>

#include "common/check_macros.h"

namespace lfstx {

InodeMap::InodeMap(uint32_t max_inodes)
    : max_inodes_(max_inodes),
      nblocks_((max_inodes + kImapEntriesPerBlock) / kImapEntriesPerBlock),
      entries_(max_inodes + 1),
      dirty_(nblocks_, false),
      block_addrs_(nblocks_, 0) {}

const ImapEntry& InodeMap::Get(InodeNum inum) const {
  assert(inum <= max_inodes_);
  return entries_[inum];
}

BlockAddr InodeMap::Set(InodeNum inum, BlockAddr inode_addr,
                        uint32_t version) {
  LFSTX_CHECK(inum != kInvalidInode && inum <= max_inodes_,
              "imap update for an out-of-range inode number");
  BlockAddr prev = entries_[inum].inode_addr;
  entries_[inum].inode_addr = inode_addr;
  entries_[inum].version = version;
  dirty_[BlockOf(inum)] = true;
  reserved_.erase(inum);
  mutation_gen_++;
  return prev;
}

BlockAddr InodeMap::Free(InodeNum inum) {
  LFSTX_CHECK(inum != kInvalidInode && inum <= max_inodes_,
              "imap free for an out-of-range inode number");
  BlockAddr prev = entries_[inum].inode_addr;
  entries_[inum].inode_addr = 0;
  entries_[inum].version++;
  dirty_[BlockOf(inum)] = true;
  reserved_.erase(inum);
  mutation_gen_++;
  return prev;
}

Result<InodeNum> InodeMap::AllocInum() {
  for (InodeNum i = 1; i <= max_inodes_; i++) {
    if (entries_[i].inode_addr == 0 && !reserved_.count(i)) {
      reserved_.insert(i);
      return i;
    }
  }
  return Status::NoSpace("out of inodes");
}

std::vector<uint32_t> InodeMap::DirtyBlocks() const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < nblocks_; i++) {
    if (dirty_[i]) out.push_back(i);
  }
  return out;
}

void InodeMap::MarkBlockDirty(uint32_t block_idx) {
  assert(block_idx < nblocks_);
  dirty_[block_idx] = true;
}

void InodeMap::ClearDirty() { dirty_.assign(nblocks_, false); }

void InodeMap::EncodeBlock(uint32_t idx, char* out) const {
  memset(out, 0, kBlockSize);
  uint32_t first = idx * kImapEntriesPerBlock;
  for (uint32_t i = 0; i < kImapEntriesPerBlock; i++) {
    uint32_t inum = first + i;
    if (inum > max_inodes_) break;
    memcpy(out + i * sizeof(ImapEntry), &entries_[inum], sizeof(ImapEntry));
  }
}

void InodeMap::DecodeBlock(uint32_t idx, const char* in) {
  mutation_gen_++;
  uint32_t first = idx * kImapEntriesPerBlock;
  for (uint32_t i = 0; i < kImapEntriesPerBlock; i++) {
    uint32_t inum = first + i;
    if (inum > max_inodes_) break;
    memcpy(&entries_[inum], in + i * sizeof(ImapEntry), sizeof(ImapEntry));
  }
}

}  // namespace lfstx
