// The inode map ("inode map blocks" of Figure 1): inode number -> current
// log address of the inode, plus a version for inode-number reuse. The
// in-memory table is authoritative; dirty map blocks are serialized into
// the log at each segment write, and block addresses are recorded in the
// checkpoint.
#ifndef LFSTX_LFS_INODE_MAP_H_
#define LFSTX_LFS_INODE_MAP_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/status.h"
#include "disk/disk_model.h"
#include "fs/fs_types.h"

namespace lfstx {

struct ImapEntry {
  BlockAddr inode_addr = 0;  ///< 0 = free / never written
  uint32_t version = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(ImapEntry) == 16);

constexpr uint32_t kImapEntriesPerBlock = kBlockSize / sizeof(ImapEntry);

/// \brief In-memory inode map with per-block dirty tracking.
class InodeMap {
 public:
  explicit InodeMap(uint32_t max_inodes);

  uint32_t max_inodes() const { return max_inodes_; }
  uint32_t nblocks() const { return nblocks_; }

  const ImapEntry& Get(InodeNum inum) const;
  /// Update an entry, marking its map block dirty. Returns the previous
  /// inode address (0 if none) so the caller can decrement segment usage.
  BlockAddr Set(InodeNum inum, BlockAddr inode_addr, uint32_t version);
  /// Free an entry (file deleted): clears the address, bumps the version.
  BlockAddr Free(InodeNum inum);

  bool InUse(InodeNum inum) const {
    return Get(inum).inode_addr != 0 || reserved_.count(inum) != 0;
  }
  /// Reserve a free inode number. The reservation holds until the inode's
  /// first flush (Set) or deletion (Free), so consecutive allocations never
  /// hand out the same number.
  Result<InodeNum> AllocInum();

  /// Which map blocks changed since the last ClearDirty.
  std::vector<uint32_t> DirtyBlocks() const;
  void MarkBlockDirty(uint32_t block_idx);
  void ClearDirty();

  /// Serialize map block `idx` into a 4 KiB buffer / load it back.
  void EncodeBlock(uint32_t idx, char* out) const;
  void DecodeBlock(uint32_t idx, const char* in);

  /// Current on-disk address of each map block (0 = never written).
  std::vector<BlockAddr>& block_addrs() { return block_addrs_; }
  const std::vector<BlockAddr>& block_addrs() const { return block_addrs_; }

  /// Bumped by every logical mutation of the mapping (Set/Free/DecodeBlock,
  /// not reservations or dirty-bit churn). GenStamp<InodeMap> assertions
  /// and the `gens` checker use it to prove no foreign mutation occurred
  /// across a region that assumed the map was stable (see
  /// check/gen_stamp.h).
  uint64_t mutation_gen() const { return mutation_gen_; }

 private:
  uint32_t BlockOf(InodeNum inum) const { return inum / kImapEntriesPerBlock; }

  uint32_t max_inodes_;
  uint32_t nblocks_;
  std::vector<ImapEntry> entries_;     // indexed by inum, [0..max_inodes]
  std::vector<bool> dirty_;            // per map block
  std::vector<BlockAddr> block_addrs_; // per map block
  std::set<InodeNum> reserved_;        // allocated but never yet flushed
  uint64_t mutation_gen_ = 0;
};

}  // namespace lfstx

#endif  // LFSTX_LFS_INODE_MAP_H_
