#include "lfs/cleaner.h"

#include <algorithm>
#include <cstring>
#include <set>

namespace lfstx {

Cleaner::Cleaner(SimEnv* env, Lfs* lfs, Options options)
    : env_(env),
      lfs_(lfs),
      options_(options),
      shared_(std::make_shared<Shared>(env)) {
  lfs_->AttachCleaner(this);
  // The daemon thread is owned by SimEnv and may be drained after this
  // Cleaner is destroyed; it only touches `this` while shared->alive.
  std::shared_ptr<Shared> shared = shared_;
  SimTime poll = options_.poll_interval;
  env_->Spawn(
      "cleaner",
      [this, env, shared, poll] {
        env->profiler()->SetCause(IoCause::kCleaner);
        while (!env->stop_requested() && shared->alive) {
          shared->wakeup.SleepFor(poll);
          if (env->stop_requested() || !shared->alive) break;
          Loop();
        }
      },
      /*daemon=*/true);

  MetricsRegistry* m = env_->metrics();
  m->AddGauge(this, "cleaner.segments_cleaned", "count",
              "victim segments reclaimed",
              [this] { return static_cast<double>(stats_.segments_cleaned); });
  m->AddGauge(this, "cleaner.live_blocks_copied", "blocks",
              "live blocks copied forward",
              [this] { return static_cast<double>(stats_.live_blocks_copied); });
  m->AddGauge(this, "cleaner.dead_blocks_dropped", "blocks",
              "dead blocks discarded",
              [this] { return static_cast<double>(stats_.dead_blocks_dropped); });
  m->AddGauge(this, "cleaner.rounds", "count", "watermark-triggered rounds",
              [this] { return static_cast<double>(stats_.rounds); });
  m->AddGauge(this, "cleaner.segment_reads", "count",
              "victim segments read back",
              [this] { return static_cast<double>(stats_.segment_reads); });
  m->AddGauge(this, "cleaner.blocks_read", "blocks",
              "blocks read back from victims",
              [this] { return static_cast<double>(stats_.blocks_read); });
  // Histogram, not a bare counter: a tail cleaning stall (one CleanOne
  // that owned the log for tens of milliseconds) is invisible in a total.
  busy_hist_ = m->GetHistogram("cleaner.busy_us", "us",
                               "per-CleanOne pass duration");
  victim_util_hist_ =
      m->GetHistogram("cleaner.victim_util_pct", "pct",
                      "victim segment live-block utilization at clean time");
}

Cleaner::~Cleaner() {
  env_->metrics()->DropOwner(this);
  shared_->alive = false;
  if (lfs_ != nullptr) lfs_->AttachCleaner(nullptr);
}

void Cleaner::Loop() {
  // Passes allowed past the engagement's best clean-segment count before
  // it yields. High enough to span the ~seg_blocks/net-yield passes one
  // net segment takes at high utilization; low enough that an equilibrium
  // grind gives the log back to its writers every poll interval.
  constexpr uint32_t kMaxStagnantPasses = 32;
  // Engage no later than the writer's reserve floor: the writer stalls at
  // three clean segments, so a low watermark below four would leave it
  // stalled while the cleaner still considers the log healthy.
  uint32_t engage = std::max<uint32_t>(options_.low_water, 4);
  if (lfs_->clean_segments() >= engage) return;
  stats_.rounds++;
  // Forward progress is judged over a window of passes, not one pass: at
  // high victim utilization a pass frees its victim (+1) but also
  // activates a fresh segment for the copy-forward (-1) — net zero — yet
  // it squeezed the victim's dead blocks out of the log, and a *run* of
  // such passes does gain ground. A per-pass segment check reads that
  // compaction as "no progress" and strands the log at the reserve floor.
  // The window also bounds each engagement: near the churn/yield
  // equilibrium a single call could otherwise grind forever chasing the
  // high watermark while the writers it blocks re-dirty everything it
  // cleans. An engagement that breaks early is retried by the next poll
  // or poke, so bounding it never strands the log.
  uint32_t best = lfs_->clean_segments();
  uint32_t stagnant = 0;
  while (lfs_->clean_segments() < options_.high_water &&
         !env_->stop_requested()) {
    // A pass needs two clean segments in hand: its flush carries the
    // victim's live blocks plus metadata (and, on the first pass after a
    // writer stall, the writer's drained backlog), which can cross one
    // segment boundary and still need room beyond it. Starting lower
    // risks running out mid-flush with the victim still dirty — and an
    // engagement can only reach this floor mid-run, since the writer
    // stalls at three and every completed pass ends at two or better.
    if (lfs_->clean_segments() < 2) break;
    uint64_t dead_before = stats_.dead_blocks_dropped;  // LFSTX_YIELD_OK(pre-pass snapshot compared across the pass on purpose)
    Status s = CleanOne();
    if (!s.ok()) break;  // nothing cleanable right now
    if (stats_.dead_blocks_dropped == dead_before &&
        lfs_->clean_segments() <= best) {
      break;  // fully-live victim and no gain: the next pass can do no better
    }
    if (lfs_->clean_segments() > best) {
      best = lfs_->clean_segments();
      stagnant = 0;
    } else if (++stagnant >= kMaxStagnantPasses) {
      break;
    }
  }
  lfs_->clean_wait_.WakeAll();
}

Status Cleaner::LockFiles(const std::vector<InodeNum>& inums,
                          std::vector<Inode*>* locked) {
  for (InodeNum inum : inums) {
    auto r = lfs_->GetInode(inum);
    if (!r.ok()) continue;  // deleted since the segment was written
    Inode* ino = r.value();
    if (!ino->being_cleaned) {
      ino->being_cleaned = true;
      locked->push_back(ino);
    }
  }
  return Status::OK();
}

void Cleaner::UnlockFiles(const std::vector<Inode*>& locked) {
  for (Inode* ino : locked) {
    ino->being_cleaned = false;
    if (ino->clean_wait != nullptr) ino->clean_wait->WakeAll();
  }
}

Status Cleaner::CleanOne() {
  SimTime t0 = env_->Now();
  bool locked_log = false;
  std::vector<Inode*> locked;

  auto lock_log = [&]() -> bool {
    // Lock and unlock live in sibling lambdas (lock_log / finish), not one
    // lexical scope: the user-space cleaner reads the victim before this
    // runs and finish() must release whatever was taken, guard or not.
    if (!lfs_->flush_lock_.Lock()) return false;  // lint-allow: released by finish()
    lfs_->flush_owner_ = SimEnv::Current();
    lfs_->cleaning_in_progress_ = true;
    // The cleaner owns the log for the rest of the pass; a cache miss
    // during its copy-forward phase must not recurse into a flush.
    lfs_->cache()->PushNoDirtyEviction();
    locked_log = true;
    return true;
  };

  auto finish = [&](Status s) {
    UnlockFiles(locked);
    if (locked_log) {
      lfs_->cache()->PopNoDirtyEviction();
      lfs_->cleaning_in_progress_ = false;
      lfs_->flush_owner_ = nullptr;
      lfs_->flush_lock_.Unlock();  // lint-allow: taken by lock_log()
      lfs_->clean_wait_.WakeAll();
    }
    SimTime busy = env_->Now() - t0;
    stats_.busy_us += busy;
    busy_hist_->Add(busy);
    return s;
  };

  // The kernel-mode cleaner owns the log for the whole pass, victim read
  // included (the behavior behind the TPC-B throughput dips, section 5.1).
  // The user-space cleaner reads the victim with no locks held — regular
  // transactions keep running and contend only for the disk arm (section
  // 5.4) — then takes the log lock for the copy-forward "system call".
  if (options_.mode == Mode::kKernel && !lock_log()) {
    return Status::Busy("stopped");
  }

  // At the reserve floor the pass must fit inside the last clean segments,
  // so override the policy with greedy: the lowest-live victim is the one
  // whose copy-forward is guaranteed smallest.
  CleanPolicy policy = lfs_->clean_segments() <= 1 ? CleanPolicy::kGreedy
                                                   : options_.policy;
  auto victim_r =
      lfs_->usage_.PickVictim(policy, env_->Now(), lfs_->segment_blocks());
  if (!victim_r.ok()) return finish(victim_r.status());
  uint32_t victim = victim_r.value();
  // LFSTX_YIELD_OK(revalidated against usage_ after the log lock is reacquired below)
  uint32_t gen = lfs_->usage_.generation(victim);
  {
    // Utilization at clean: the input to Rosenblum's 2/(1-u) write cost
    // (surfaced as the wa.write_cost gauge).
    uint64_t util_pct = 100ull * lfs_->usage_.live(victim) /
                        std::max<uint32_t>(1, lfs_->segment_blocks());
    victim_util_hist_->Add(util_pct);
    LFSTX_TRACE(env_->tracer(), TraceCat::kLogEcon, "victim",
                {"seg", victim}, {"util_pct", util_pct},
                {"live", lfs_->usage_.live(victim)}, {"gen", gen});
  }
  BlockAddr base = lfs_->SegBase(victim);
  uint32_t seg_blocks = lfs_->segment_blocks();

  LFSTX_TRACE(env_->tracer(), TraceCat::kCleaner, "clean_begin",
              {"victim", victim}, {"live", lfs_->usage_.live(victim)},
              {"gen", gen}, {"clean_left", lfs_->clean_segments()});

  // Read the whole victim in one request.
  std::vector<char> seg(static_cast<size_t>(seg_blocks) * kBlockSize);
  if (Status s = lfs_->disk()->Read(base, seg_blocks, seg.data()); !s.ok()) {
    return finish(s);
  }
  stats_.segment_reads++;
  stats_.blocks_read += seg_blocks;

  if (!locked_log) {
    if (!lock_log()) return finish(Status::Busy("stopped"));
    // The log moved on while the victim was being read. A dirty segment
    // cannot be reactivated, so the buffer is still this incarnation's
    // bytes; revalidate anyway and drop the pass if the segment changed
    // state under us (the per-block liveness checks below handle blocks
    // that merely died in the meantime).
    if (lfs_->usage_.state(victim) != SegState::kDirty ||
        lfs_->usage_.generation(victim) != gen) {
      return finish(Status::OK());
    }
  }

  // Reclaim-on-failure: a flush that ran out of log mid-pass may still
  // have relocated every remaining live block, and reclaiming the victim
  // here is what lets the next engagement run at all — it needs a clean
  // segment to start, and an abort that freed nothing is an absorbing
  // state. The checkpoint goes to the fixed region, so it cannot fail for
  // lack of log space.
  auto salvage = [&](Status s) {
    if (lfs_->usage_.state(victim) == SegState::kDirty &&
        lfs_->usage_.live(victim) == 0) {
      lfs_->usage_.MarkClean(victim);
      stats_.segments_cleaned++;
      (void)lfs_->WriteCheckpointLocked();
    }
    return finish(s);
  };

  // Drain the writers' backlog before copying anything forward: the
  // flushes below write every dirty block in the cache, so a stalled
  // writer's pending batch would otherwise ride along with the pass and
  // push its log consumption past the reserve mid-copy. Flushing it first
  // charges that space while there is still room, leaving the pass itself
  // bounded by the victim's live blocks plus metadata.
  if (lfs_->cache()->dirty_count() > 0) {
    if (Status s = lfs_->FlushLocked(kNoTxn); !s.ok()) return salvage(s);
  }

  // Parse this incarnation's chunks.
  struct Chunk {
    Summary summary;
    uint32_t off;
  };
  std::vector<Chunk> chunks;
  uint32_t off = 0;
  while (off + 1 < seg_blocks) {
    const char* sb = seg.data() + static_cast<size_t>(off) * kBlockSize;
    auto npeek = Summary::PeekNBlocks(sb);
    if (!npeek.ok()) break;
    uint32_t n = npeek.value();
    if (off + 1 + n > seg_blocks) break;
    auto sres = Summary::Decode(
        sb, seg.data() + static_cast<size_t>(off + 1) * kBlockSize, n);
    if (!sres.ok()) break;
    if (sres.value().generation != gen) break;  // stale older incarnation
    chunks.push_back(Chunk{sres.take(), off});
    off += 1 + n;
    env_->Consume(env_->costs().segment_block_cpu_us * (1 + n));
  }

  // The kernel-mode cleaner locks every file it touches for the duration
  // (the behavior behind the TPC-B throughput dips, section 5.1).
  if (options_.mode == Mode::kKernel) {
    std::vector<InodeNum> inums;
    for (const Chunk& c : chunks) {
      for (uint32_t i = 0; i < c.summary.nblocks(); i++) {
        const SummaryEntry& e = c.summary.entries[i];
        BlockKind kind = static_cast<BlockKind>(e.kind);
        if (kind == BlockKind::kData || kind == BlockKind::kIndirect) {
          inums.push_back(e.inum);
        } else if (kind == BlockKind::kInode) {
          const char* payload =
              seg.data() + static_cast<size_t>(c.off + 1 + i) * kBlockSize;
          for (uint32_t slot = 0; slot < kInodesPerBlock; slot++) {
            DiskInode d;
            DecodeInode(payload, slot, &d);
            if (d.inum != kInvalidInode &&
                d.file_type() != FileType::kFree) {
              inums.push_back(d.inum);
            }
          }
        }
      }
    }
    std::set<InodeNum> unique(inums.begin(), inums.end());
    if (Status s = LockFiles(
            std::vector<InodeNum>(unique.begin(), unique.end()), &locked);
        !s.ok()) {
      return finish(s);
    }
  }

  // Liveness check + copy-forward: mark every live block dirty in the
  // cache (or the in-core inode / inode map) so the next flush rewrites it.
  uint64_t live_copied = 0, dead = 0;
  for (const Chunk& c : chunks) {
    for (uint32_t i = 0; i < c.summary.nblocks(); i++) {
      const SummaryEntry& e = c.summary.entries[i];
      BlockAddr addr = base + c.off + 1 + i;
      const char* payload =
          seg.data() + static_cast<size_t>(c.off + 1 + i) * kBlockSize;
      BlockKind kind = static_cast<BlockKind>(e.kind);
      bool live = false;
      if (kind == BlockKind::kData || kind == BlockKind::kIndirect) {
        auto ir = lfs_->GetInode(e.inum);
        if (ir.ok()) {
          auto mr = kind == BlockKind::kData
                        ? lfs_->MapBlock(ir.value(), e.lblock)
                        : lfs_->GetMetaBlockHome(ir.value(), e.lblock);
          if (mr.ok() && mr.value() == addr) {
            live = true;
            FileId fid = kind == BlockKind::kData
                             ? ir.value()->data_file_id()
                             : ir.value()->meta_file_id();
            Buffer* buf = lfs_->cache()->Peek(BufferKey{fid, e.lblock});
            if (buf != nullptr) {
              // Cached: if clean, its contents equal this log copy; if
              // dirty, a newer version will be flushed anyway. Either way
              // just make sure it gets rewritten.
              lfs_->cache()->MarkDirty(buf);
              lfs_->cache()->Release(buf);
            } else {
              auto br = lfs_->cache()->GetNoLoad(BufferKey{fid, e.lblock});
              if (!br.ok()) return finish(br.status());
              memcpy(br.value()->data, payload, kBlockSize);
              lfs_->cache()->MarkDirty(br.value());
              lfs_->cache()->Release(br.value());
              env_->Consume(env_->costs().segment_block_cpu_us);
            }
          }
        }
      } else if (kind == BlockKind::kInode) {
        for (uint32_t slot = 0; slot < kInodesPerBlock; slot++) {
          DiskInode d;
          DecodeInode(payload, slot, &d);
          if (d.inum == kInvalidInode || d.file_type() == FileType::kFree) {
            continue;
          }
          const ImapEntry& ie = lfs_->imap_.Get(d.inum);
          if (ie.inode_addr == addr && ie.version == d.version) {
            auto ir = lfs_->GetInode(d.inum);
            if (ir.ok()) {
              live = true;
              if (Status s = lfs_->NoteInodeDirty(ir.value()); !s.ok()) {
                return finish(s);
              }
            }
          }
        }
      } else if (kind == BlockKind::kImap) {
        uint32_t idx = static_cast<uint32_t>(e.lblock);
        if (idx < lfs_->imap_.nblocks() &&
            lfs_->imap_.block_addrs()[idx] == addr) {
          live = true;
          lfs_->imap_.MarkBlockDirty(idx);
        }
      }
      if (live) {
        live_copied++;
      } else {
        dead++;
      }
      // Keep the copy-forward working set bounded: flush part-way if the
      // cache is filling with copied blocks.
      if (lfs_->cache()->dirty_count() * 2 >= lfs_->cache()->capacity()) {
        if (Status s = lfs_->FlushLocked(kNoTxn); !s.ok()) return salvage(s);
      }
    }
  }
  stats_.live_blocks_copied += live_copied;
  stats_.dead_blocks_dropped += dead;

  // Rewrite the live data elsewhere, reclaim the victim, and checkpoint so
  // the crash-recovery window never references the reclaimed segment.
  if (Status s = lfs_->FlushLocked(kNoTxn); !s.ok()) return salvage(s);
  if (options_.mode == Mode::kUserSpace) {
    // Section 5.4: a user-space cleaner revalidates its copied blocks
    // against recently-modified blocks inside one system call.
    env_->Syscall(live_copied * 5);
  }
  if (lfs_->usage_.state(victim) == SegState::kDirty &&
      lfs_->usage_.live(victim) == 0) {
    lfs_->usage_.MarkClean(victim);
    stats_.segments_cleaned++;
  }
  if (Status s = lfs_->WriteCheckpointLocked(); !s.ok()) return finish(s);
  LFSTX_TRACE(env_->tracer(), TraceCat::kCleaner, "clean_end",
              {"victim", victim}, {"live_copied", live_copied},
              {"dead", dead}, {"clean_left", lfs_->clean_segments()});
  return finish(Status::OK());
}

Status Cleaner::CoalesceFile(InodeNum inum) {
  auto ir = lfs_->GetInode(inum);
  if (!ir.ok()) return ir.status();
  Inode* ino = ir.value();
  uint64_t nblocks = ino->d.size_blocks();
  LFSTX_TRACE(env_->tracer(), TraceCat::kCleaner, "coalesce_begin",
              {"inum", inum}, {"nblocks", nblocks});
  // One window per segment: every mapped block in the window is pulled
  // into the cache, dirtied, and flushed, so the segment writer lays the
  // window down contiguously (and in logical order, since it sorts dirty
  // data by (file, block)).
  uint64_t window = lfs_->segment_blocks() - 8;  // room for meta blocks
  for (uint64_t start = 0; start < nblocks; start += window) {
    uint64_t end = std::min(nblocks, start + window);
    for (uint64_t lb = start; lb < end; lb++) {
      LFSTX_ASSIGN_OR_RETURN(BlockAddr addr, lfs_->MapBlock(ino, lb));
      if (addr == kInvalidBlock) continue;  // sparse
      Buffer* buf = lfs_->cache()->Peek(BufferKey{ino->data_file_id(), lb});
      if (buf == nullptr) {
        SimDisk* disk = lfs_->disk();
        auto br = lfs_->cache()->Get(
            BufferKey{ino->data_file_id(), lb},
            [disk, addr](char* dst) { return disk->Read(addr, 1, dst); });
        LFSTX_RETURN_IF_ERROR(br.status());
        buf = br.value();
      }
      lfs_->cache()->MarkDirty(buf);
      lfs_->cache()->Release(buf);
    }
    LFSTX_RETURN_IF_ERROR(lfs_->Flush(kNoTxn));
  }
  LFSTX_TRACE(env_->tracer(), TraceCat::kCleaner, "coalesce_end",
              {"inum", inum}, {"nblocks", nblocks});
  return lfs_->Checkpoint();
}

}  // namespace lfstx
