// On-disk segment format of the log-structured file system.
//
// The disk beyond the superblock and the two checkpoint regions is divided
// into fixed-size segments (default 128 blocks = 512 KiB). Each *write* to
// the log is a "partial segment": one summary block followed by nblocks of
// data / indirect / inode / inode-map blocks, all transferred in a single
// contiguous disk request (this is the whole point — section 2).
//
// The summary records, per following block, which (inode, logical block) it
// holds, so the cleaner can check liveness, and carries a CRC over the
// summary *and* the payload so recovery can detect torn writes. Summaries
// chain: each one names the disk address where the next summary will be
// written, which is what roll-forward follows after a crash.
//
// Transaction atomicity (embedded manager): a partial segment written on
// behalf of a transaction commit carries the txn id; the chunk that
// completes the commit sets txn_commit. Roll-forward stages tagged inode /
// imap updates and applies them only if the commit marker is reached.
#ifndef LFSTX_LFS_SEGMENT_H_
#define LFSTX_LFS_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "disk/disk_model.h"
#include "fs/fs_types.h"

namespace lfstx {

constexpr uint32_t kDefaultSegmentBlocks = 128;  // 512 KiB
constexpr uint32_t kSummaryMagic = 0x53554D31;   // "SUM1"

/// What a block in a partial segment contains.
enum class BlockKind : uint32_t {
  kData = 1,      ///< file data block (inum, file lblock)
  kIndirect = 2,  ///< indirect block (inum, meta-namespace lblock)
  kInode = 3,     ///< packed DiskInodes (self-describing)
  kImap = 4,      ///< inode-map block (lblock = imap block index)
};

/// One per payload block in the partial segment.
struct SummaryEntry {
  uint32_t kind = 0;
  InodeNum inum = kInvalidInode;
  uint64_t lblock = 0;
};
static_assert(sizeof(SummaryEntry) == 16);

/// \brief Decoded partial-segment summary.
struct Summary {
  uint64_t write_seq = 0;    ///< global monotonic partial-segment counter
  uint64_t timestamp = 0;    ///< virtual time of the write
  uint32_t generation = 0;   ///< of the containing segment (stale detection)
  BlockAddr next_addr = kInvalidBlock;  ///< where the next summary will go
  TxnId txn = kNoTxn;        ///< commit this chunk belongs to, if any
  bool txn_commit = false;   ///< this chunk completes `txn`'s commit
  std::vector<SummaryEntry> entries;

  uint32_t nblocks() const { return static_cast<uint32_t>(entries.size()); }

  /// Max payload blocks one summary block can describe.
  static uint32_t MaxEntries();

  /// Serialize into a 4 KiB summary block. `payload` (nblocks * 4 KiB) is
  /// covered by the CRC but not copied.
  void Encode(char* block, const char* payload) const;

  /// Parse + verify a summary block against its payload. Returns
  /// kCorruption for bad magic/CRC (i.e. end of log or torn write).
  static Result<Summary> Decode(const char* block, const char* payload,
                                size_t payload_available_blocks);

  /// Parse the header only (enough to learn nblocks), without CRC check.
  static Result<uint32_t> PeekNBlocks(const char* block);
};

}  // namespace lfstx

#endif  // LFSTX_LFS_SEGMENT_H_
