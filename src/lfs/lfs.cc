#include "lfs/lfs.h"

#include <cassert>
#include <cstring>

#include "lfs/cleaner.h"

namespace lfstx {

namespace {
struct LfsSuperblock {
  uint32_t magic = Lfs::kMagic;
  uint32_t segment_blocks = 0;
  uint32_t max_inodes = 0;
  uint32_t nsegments = 0;
  uint64_t seg_start = 0;
  uint64_t checkpoint_a = 0;
  uint64_t checkpoint_b = 0;
  uint32_t checkpoint_blocks = 0;
  uint32_t pad = 0;
};
}  // namespace

Lfs::Lfs(SimEnv* env, SimDisk* disk, BufferCache* cache)
    : Lfs(env, disk, cache, Options{}) {}

Lfs::Lfs(SimEnv* env, SimDisk* disk, BufferCache* cache, Options options)
    : FsCore(env, disk, cache),
      options_(options),
      imap_(options.max_inodes),
      usage_(1),  // resized below once geometry is known
      // yield_ok: the checkpoint lock is held across the fuzzy image
      // write; the log lock serializes multi-I/O segment and checkpoint
      // writes, so holding them across disk I/O is their purpose.
      checkpoint_lock_(env, "lfs.checkpoint", /*yield_ok=*/true),
      flush_lock_(env, "lfs.flush", /*yield_ok=*/true),
      clean_wait_(env) {
  uint64_t total = disk->num_blocks();
  // Checkpoint size depends on the segment count; one refinement pass
  // converges because more checkpoint blocks only shrink the segment area.
  uint32_t nseg = static_cast<uint32_t>((total - 1) / options_.segment_blocks);
  uint32_t cpb = CheckpointData::BlocksNeeded(imap_.nblocks(), nseg);
  geo_.checkpoint_blocks = cpb;
  geo_.checkpoint_a = 1;
  geo_.checkpoint_b = 1 + cpb;
  geo_.seg_start = 1 + 2ull * cpb;
  geo_.nsegments =
      static_cast<uint32_t>((total - geo_.seg_start) / options_.segment_blocks);
  usage_ = SegmentUsage(geo_.nsegments);
  usage_.AttachTelemetry(env_, options_.segment_blocks);

  MetricsRegistry* m = env_->metrics();
  stall_blame_hist_ = m->GetHistogram(
      "blame.lfs.cleaner_us", "us",
      "writer stall time blamed on the cleaner (one wait_edge each)");
  m->AddGauge(this, "lfs.partial_segments", "count", "log chunks written",
              [this] { return static_cast<double>(lfs_stats_.partial_segments); });
  m->AddGauge(this, "lfs.segments_activated", "count",
              "clean segments opened for writing",
              [this] { return static_cast<double>(lfs_stats_.segments_activated); });
  m->AddGauge(this, "lfs.blocks_written", "blocks",
              "payload blocks appended to the log",
              [this] { return static_cast<double>(lfs_stats_.blocks_written); });
  m->AddGauge(this, "lfs.checkpoints", "count", "checkpoints written",
              [this] { return static_cast<double>(lfs_stats_.checkpoints); });
  m->AddGauge(this, "lfs.fuzzy_checkpoints", "count",
              "checkpoints whose image was written without the flush lock",
              [this] { return static_cast<double>(lfs_stats_.fuzzy_checkpoints); });
  m->AddGauge(this, "lfs.checkpoints_skipped", "count",
              "checkpoint requests skipped (log clean or write in flight)",
              [this] { return static_cast<double>(lfs_stats_.checkpoints_skipped); });
  m->AddGauge(this, "lfs.flushes", "count", "Flush() calls",
              [this] { return static_cast<double>(lfs_stats_.flushes); });
  m->AddGauge(this, "lfs.writer_stalls", "count",
              "writer waits for the cleaner",
              [this] { return static_cast<double>(lfs_stats_.writer_stalls); });
  m->AddGauge(this, "lfs.clean_segments", "segments",
              "segments currently clean",
              [this] { return static_cast<double>(usage_.clean_count()); });
  m->AddGauge(this, "lfs.utilization", "ratio",
              "live blocks / non-clean segment capacity", [this] {
                uint64_t live = 0, cap = 0;
                for (uint32_t s = 0; s < usage_.nsegments(); s++) {
                  if (usage_.state(s) == SegState::kClean) continue;
                  live += usage_.live(s);
                  cap += options_.segment_blocks;
                }
                return cap == 0 ? 0.0
                                : static_cast<double>(live) /
                                      static_cast<double>(cap);
              });
  // Sampler-visible log-health time series (ISSUE: "the log's health is a
  // time series, not just an end-state").
  m->AddGauge(this, "logecon.live_fraction", "ratio",
              "live blocks / total log capacity", [this] {
                uint64_t cap = static_cast<uint64_t>(usage_.nsegments()) *
                               options_.segment_blocks;
                return cap == 0 ? 0.0
                                : static_cast<double>(usage_.total_live()) /
                                      static_cast<double>(cap);
              });
  m->AddGauge(this, "logecon.free_segments", "segments",
              "clean segments available to the writer",
              [this] { return static_cast<double>(usage_.clean_count()); });
}

Lfs::~Lfs() { env_->metrics()->DropOwner(this); }

// ------------------------------------------------------------- lifecycle --

Status Lfs::Format() {
  char block[kBlockSize] = {0};
  LfsSuperblock sb;
  sb.segment_blocks = options_.segment_blocks;
  sb.max_inodes = options_.max_inodes;
  sb.nsegments = geo_.nsegments;
  sb.seg_start = geo_.seg_start;
  sb.checkpoint_a = geo_.checkpoint_a;
  sb.checkpoint_b = geo_.checkpoint_b;
  sb.checkpoint_blocks = geo_.checkpoint_blocks;
  memcpy(block, &sb, sizeof(sb));
  disk_->RawWrite(0, 1, block);

  cur_seg_ = 0;
  cur_gen_ = usage_.Activate(cur_seg_);
  cur_off_ = 0;
  log_head_gen_++;
  next_write_seq_ = 1;
  mounted_ = true;
  LFSTX_RETURN_IF_ERROR(InitRoot());
  LFSTX_RETURN_IF_ERROR(Flush(kNoTxn));
  SimMutexGuard g(&flush_lock_);
  return WriteCheckpointLocked();
}

Status Lfs::Mount() {
  if (mounted_) return Status::OK();
  char block[kBlockSize];
  disk_->RawRead(0, 1, block);
  LfsSuperblock sb;
  memcpy(&sb, block, sizeof(sb));
  if (sb.magic != kMagic) return Status::Corruption("bad LFS superblock");
  if (sb.segment_blocks != options_.segment_blocks ||
      sb.max_inodes != options_.max_inodes) {
    // Adopt the on-disk geometry.
    options_.segment_blocks = sb.segment_blocks;
    options_.max_inodes = sb.max_inodes;
    imap_ = InodeMap(sb.max_inodes);
  }
  geo_.seg_start = sb.seg_start;
  geo_.nsegments = sb.nsegments;
  geo_.checkpoint_blocks = sb.checkpoint_blocks;
  geo_.checkpoint_a = sb.checkpoint_a;
  geo_.checkpoint_b = sb.checkpoint_b;
  usage_ = SegmentUsage(geo_.nsegments);
  // Move-assignment replaced the telemetry-attached table; re-attach with
  // the (possibly adopted on-disk) geometry before recovery mutates it.
  usage_.AttachTelemetry(env_, options_.segment_blocks);

  LFSTX_RETURN_IF_ERROR(RecoverFromCheckpointAndRollForward());
  mounted_ = true;
  return Status::OK();
}

Status Lfs::Unmount() {
  if (!mounted_) return Status::OK();
  if (AnyOpenFiles()) return Status::Busy("open files at unmount");
  LFSTX_RETURN_IF_ERROR(Flush(kNoTxn));
  {
    SimMutexGuard g(&flush_lock_);
    LFSTX_RETURN_IF_ERROR(WriteCheckpointLocked());
  }
  ClearInodeTable();
  mounted_ = false;
  return Status::OK();
}

Status Lfs::SyncAll() { return Flush(kNoTxn); }

Status Lfs::SyncFile(InodeNum inum) {
  (void)inum;  // LFS always writes whole segments
  return Flush(kNoTxn);
}

Status Lfs::WriteBack(Buffer* buf) {
  (void)buf;
  if (flush_owner_ != nullptr && flush_owner_ == SimEnv::Current()) {
    return Status::Internal(
        "re-entrant LFS flush: buffer cache too small for the flush "
        "working set");
  }
  return Flush(kNoTxn);
}

Status Lfs::Checkpoint() {
  if (!mounted_) return Status::OK();  // daemon tick before boot finishes
  // Fuzzy path: serialize against other fuzzy checkpointers, snapshot
  // under the flush lock, then write the image with the lock released so
  // transactions keep committing during the multi-block region write.
  SimMutexGuard cg(&checkpoint_lock_);
  if (!cg.locked()) return Status::Busy("stopped before checkpoint");
  CheckpointData cp;
  BlockAddr region = 0;
  {
    SimMutexGuard g(&flush_lock_);
    if (!g.locked()) return Status::Busy("stopped before checkpoint");
    if (CheckpointIsCleanLocked()) {
      lfs_stats_.checkpoints_skipped++;
      return Status::OK();
    }
    // No image write can be in flight here: fuzzy writers hold
    // checkpoint_lock_ and locked writers finish inside the flush lock.
    LFSTX_RETURN_IF_ERROR(CaptureCheckpointLocked(&cp, &region));
  }
  Status s = WriteCheckpointImage(cp, region);
  if (s.ok()) lfs_stats_.fuzzy_checkpoints++;
  return s;
}

// ----------------------------------------------------------------- inodes --

Status Lfs::LoadInode(InodeNum inum, DiskInode* out) {
  if (inum == kInvalidInode || inum > options_.max_inodes) {
    return Status::InvalidArgument("inode number out of range");
  }
  const ImapEntry& e = imap_.Get(inum);
  if (e.inode_addr == 0) {
    return Status::NotFound("inode " + std::to_string(inum) + " not mapped");
  }
  char block[kBlockSize];
  LFSTX_RETURN_IF_ERROR(disk_->Read(e.inode_addr, 1, block));
  for (uint32_t slot = 0; slot < kInodesPerBlock; slot++) {
    DiskInode d;
    DecodeInode(block, slot, &d);
    if (d.inum == inum && d.file_type() != FileType::kFree) {
      *out = d;
      return Status::OK();
    }
  }
  return Status::Corruption("inode " + std::to_string(inum) +
                            " missing from its mapped block");
}

Result<InodeNum> Lfs::AllocInodeNum() { return imap_.AllocInum(); }

Status Lfs::ReleaseInodeNum(Inode* ino) {
  BlockAddr prev = imap_.Free(ino->num());
  if (prev != 0) {
    auto it = inode_block_refs_.find(prev);
    if (it != inode_block_refs_.end() && --it->second == 0) {
      usage_.DecLive(SegOf(prev), 1);
      inode_block_refs_.erase(it);
    }
  }
  return Status::OK();
}

Status Lfs::NoteInodeDirty(Inode* ino) {
  ino->dirty = true;
  return Status::OK();
}

// ----------------------------------------------------------------- blocks --

Result<BlockAddr> Lfs::AllocBlockAddr(Inode* ino) {
  (void)ino;
  return kInvalidBlock;  // addresses are assigned by the segment writer
}

void Lfs::ReleaseBlockAddr(BlockAddr addr) {
  if (addr >= geo_.seg_start) {
    usage_.DecLive(SegOf(addr), 1);
  }
}

Status Lfs::EnterDataPath(Inode* ino) {
  while (ino->being_cleaned) {
    if (ino->clean_wait == nullptr) {
      ino->clean_wait = std::make_unique<WaitQueue>(env_);
    }
    if (ino->clean_wait->Sleep() == WakeReason::kStopped) {
      return Status::Busy("simulation stopped while file was being cleaned");
    }
  }
  return Status::OK();
}

}  // namespace lfstx
