// Checkpoint regions: two fixed areas written alternately. A checkpoint
// snapshots the inode-map block addresses, the segment usage table, and the
// log write position; recovery loads the newer valid one and rolls the log
// forward from there.
#ifndef LFSTX_LFS_CHECKPOINT_H_
#define LFSTX_LFS_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "disk/disk_model.h"
#include "sim/clock.h"

namespace lfstx {

class SegmentUsage;

/// \brief Everything a checkpoint persists.
struct CheckpointData {
  uint64_t seq = 0;             ///< monotonic checkpoint counter
  SimTime timestamp = 0;
  uint32_t cur_segment = 0;     ///< write point at checkpoint time
  uint32_t cur_offset = 0;
  uint32_t cur_generation = 0;
  uint64_t next_write_seq = 0;  ///< expected seq of the next partial segment
  std::vector<BlockAddr> imap_addrs;
  std::vector<char> usage_bytes;  ///< SegmentUsage::Serialize output

  /// Blocks needed to hold a checkpoint with these table sizes.
  static uint32_t BlocksNeeded(uint32_t n_imap_blocks, uint32_t nsegments);

  /// Serialize into `nblocks` 4 KiB blocks (CRC-protected).
  void Encode(char* out, uint32_t nblocks) const;
  static Result<CheckpointData> Decode(const char* in, uint32_t nblocks);
};

}  // namespace lfstx

#endif  // LFSTX_LFS_CHECKPOINT_H_
