#include "lfs/segment_usage.h"

#include <cassert>
#include <cstring>

#include "common/check_macros.h"
#include "sim/sim_env.h"

namespace lfstx {

SegmentUsage::SegmentUsage(uint32_t nsegments)
    : nsegments_(nsegments), clean_count_(nsegments), entries_(nsegments) {}

void SegmentUsage::AttachTelemetry(SimEnv* env, uint32_t segment_blocks) {
  env_ = env;
  segment_blocks_ = segment_blocks;
  lifetime_hist_ = env->metrics()->GetHistogram(
      "lfs.segment_lifetime_us", "us",
      "virtual age of a segment from last write to cleaned");
}

void SegmentUsage::AddLive(uint32_t seg, uint32_t blocks, SimTime now) {
  assert(seg < nsegments_);
  entries_[seg].live += blocks;
  entries_[seg].write_time = now;
  total_live_ += blocks;
  mutation_gen_++;
}

void SegmentUsage::DecLive(uint32_t seg, uint32_t blocks) {
  assert(seg < nsegments_);
  // Clamp rather than assert: usage is a cleaning heuristic and recovery
  // rebuilds it exactly; transient undercounts must not kill the system.
  uint32_t dec = entries_[seg].live >= blocks ? blocks : entries_[seg].live;
  entries_[seg].live -= dec;
  total_live_ -= dec;
  mutation_gen_++;
}

uint32_t SegmentUsage::Activate(uint32_t seg) {
  LFSTX_CHECK(entries_[seg].state == SegState::kClean,
              "activating a non-clean segment would overwrite live data");
  entries_[seg].state = SegState::kActive;
  entries_[seg].generation++;
  total_live_ -= entries_[seg].live;
  entries_[seg].live = 0;
  clean_count_--;
  mutation_gen_++;
  if (env_ != nullptr) {
    LFSTX_TRACE(env_->tracer(), TraceCat::kLogEcon, "seg_activate",
                {"seg", seg}, {"gen", entries_[seg].generation});
  }
  return entries_[seg].generation;
}

void SegmentUsage::Retire(uint32_t seg) {
  assert(entries_[seg].state == SegState::kActive);
  entries_[seg].state = SegState::kDirty;
  mutation_gen_++;
  if (env_ != nullptr) {
    LFSTX_TRACE(env_->tracer(), TraceCat::kLogEcon, "seg_sealed",
                {"seg", seg}, {"live", entries_[seg].live},
                {"gen", entries_[seg].generation});
  }
}

void SegmentUsage::MarkClean(uint32_t seg) {
  LFSTX_CHECK(entries_[seg].state == SegState::kDirty,
              "only a retired (dirty) segment can be marked clean");
  LFSTX_CHECK(entries_[seg].live == 0,
              "marking a segment clean while it still holds live blocks "
              "would let the segment writer destroy them");
  entries_[seg].state = SegState::kClean;
  clean_count_++;
  mutation_gen_++;
  if (env_ != nullptr) {
    SimTime lifetime = env_->Now() - entries_[seg].write_time;
    lifetime_hist_->Add(lifetime);
    LFSTX_TRACE(env_->tracer(), TraceCat::kLogEcon, "seg_cleaned",
                {"seg", seg}, {"gen", entries_[seg].generation},
                {"lifetime_us", lifetime});
  }
}

void SegmentUsage::SetRaw(uint32_t seg, SegState state, uint32_t live,
                          uint32_t gen, SimTime write_time) {
  if (entries_[seg].state == SegState::kClean &&
      state != SegState::kClean) {
    clean_count_--;
  } else if (entries_[seg].state != SegState::kClean &&
             state == SegState::kClean) {
    clean_count_++;
  }
  total_live_ += live;
  total_live_ -= entries_[seg].live;
  entries_[seg] = Entry{live, state, gen, write_time};
  mutation_gen_++;
}

void SegmentUsage::ResetAllLive() {
  for (auto& e : entries_) e.live = 0;
  total_live_ = 0;
  mutation_gen_++;
}

Result<uint32_t> SegmentUsage::PickClean(uint32_t after) const {
  for (uint32_t k = 1; k <= nsegments_; k++) {
    uint32_t seg = (after + k) % nsegments_;
    if (entries_[seg].state == SegState::kClean) return seg;
  }
  return Status::NoSpace("no clean segments (cleaner has fallen behind)");
}

Result<uint32_t> SegmentUsage::PickVictim(CleanPolicy policy, SimTime now,
                                          uint32_t segment_blocks) const {
  bool found = false;
  uint32_t best = 0;
  double best_score = 0;
  for (uint32_t seg = 0; seg < nsegments_; seg++) {
    const Entry& e = entries_[seg];
    if (e.state != SegState::kDirty) continue;
    double u = static_cast<double>(e.live) / segment_blocks;
    if (u > 1.0) u = 1.0;
    double score;
    if (policy == CleanPolicy::kGreedy) {
      score = 1.0 - u;  // fewer live blocks = better
    } else {
      double age = ToSeconds(now - e.write_time) + 1.0;
      score = (1.0 - u) * age / (1.0 + u);
    }
    if (!found || score > best_score) {
      found = true;
      best = seg;
      best_score = score;
    }
  }
  if (!found) return Status::NoSpace("no dirty segment to clean");
  return best;
}

void SegmentUsage::Serialize(char* out) const {
  memset(out, 0, SerializedBytes());
  for (uint32_t i = 0; i < nsegments_; i++) {
    const Entry& e = entries_[i];
    char* p = out + static_cast<size_t>(i) * 16;
    memcpy(p, &e.live, 4);
    uint8_t st = static_cast<uint8_t>(e.state);
    memcpy(p + 4, &st, 1);
    memcpy(p + 5, &e.generation, 4);
    // write_time truncated to 56 bits is far beyond any simulation length.
    uint64_t wt = e.write_time;
    memcpy(p + 9, &wt, 7);
  }
}

void SegmentUsage::Deserialize(const char* in) {
  mutation_gen_++;
  clean_count_ = 0;
  total_live_ = 0;
  for (uint32_t i = 0; i < nsegments_; i++) {
    const char* p = in + static_cast<size_t>(i) * 16;
    Entry e;
    memcpy(&e.live, p, 4);
    uint8_t st;
    memcpy(&st, p + 4, 1);
    e.state = static_cast<SegState>(st);
    memcpy(&e.generation, p + 5, 4);
    uint64_t wt = 0;
    memcpy(&wt, p + 9, 7);
    e.write_time = wt;
    // A crash can leave the previously-active segment marked active; it is
    // simply dirty now (roll-forward decides how much of it is real).
    if (e.state == SegState::kActive) e.state = SegState::kDirty;
    entries_[i] = e;
    if (e.state == SegState::kClean) clean_count_++;
    total_live_ += e.live;
  }
}

}  // namespace lfstx
