// The log-structured file system (paper section 2, after Rosenblum &
// Ousterhout). Disk layout:
//
//   block 0                     superblock
//   blocks 1..C                 checkpoint region A
//   blocks C+1..2C              checkpoint region B
//   seg_start..end              segments (default 128 blocks each)
//
// All writes append to the current segment as partial segments (summary +
// payload, one contiguous disk request). Nothing is overwritten in place,
// so before-images of updated blocks survive until the cleaner reclaims
// them — the property the embedded transaction manager's abort path and
// crash recovery rely on (section 2, second characteristic).
#ifndef LFSTX_LFS_LFS_H_
#define LFSTX_LFS_LFS_H_

#include <unordered_map>
#include <vector>

#include "fs/vfs.h"
#include "lfs/checkpoint.h"
#include "lfs/inode_map.h"
#include "lfs/segment.h"
#include "lfs/segment_usage.h"
#include "sim/sync.h"

namespace lfstx {

class Cleaner;

/// \brief Log-structured file system.
class Lfs : public FsCore {
 public:
  static constexpr uint32_t kMagic = 0x4C465331;  // "LFS1"

  struct Options {
    uint32_t segment_blocks = kDefaultSegmentBlocks;
    uint32_t max_inodes = 4096;
    /// Write a checkpoint every N segment activations (and at unmount /
    /// after every cleaning round).
    uint32_t checkpoint_every_segments = 8;
  };

  struct LfsStats {
    uint64_t partial_segments = 0;   ///< chunks written
    uint64_t segments_activated = 0;
    uint64_t blocks_written = 0;     ///< payload blocks through the log
    uint64_t checkpoints = 0;
    uint64_t flushes = 0;
    uint64_t writer_stalls = 0;      ///< waits for the cleaner
  };

  Lfs(SimEnv* env, SimDisk* disk, BufferCache* cache);
  Lfs(SimEnv* env, SimDisk* disk, BufferCache* cache, Options options);
  ~Lfs() override;

  const char* fs_name() const override { return "LFS"; }
  Status Format() override;
  Status Mount() override;  ///< includes crash recovery (roll-forward)
  Status Unmount() override;
  Status SyncAll() override;
  Status SyncFile(InodeNum inum) override;

  /// WritebackHandler: an eviction of any dirty buffer triggers a full
  /// segment write — LFS always writes "a large number of dirty blocks"
  /// together (section 2).
  Status WriteBack(Buffer* buf) override;

  /// Flush everything dirty to the log. When `txn` is nonzero the chunks
  /// are tagged so roll-forward applies them atomically (commit path of
  /// the embedded transaction manager).
  Status Flush(TxnId txn = kNoTxn);

  /// Force a checkpoint now.
  Status Checkpoint();

  const LfsStats& lfs_stats() const { return lfs_stats_; }
  uint32_t clean_segments() const { return usage_.clean_count(); }
  uint32_t nsegments() const { return geo_.nsegments; }
  uint32_t segment_blocks() const { return options_.segment_blocks; }
  uint64_t seg_start() const { return geo_.seg_start; }
  const SegmentUsage& usage() const { return usage_; }
  const InodeMap& imap() const { return imap_; }

  /// Registered by the Cleaner so the writer can wait for free segments.
  void AttachCleaner(Cleaner* cleaner) { cleaner_ = cleaner; }

  /// Bumped every time the log head moves (chunk sealed, segment advanced,
  /// format, recovery restore/roll-forward). GenStamp<Lfs> assertions use
  /// it to prove the head stayed put across a multi-block disk write that
  /// assumed exclusive ownership of the log (see check/gen_stamp.h).
  uint64_t mutation_gen() const { return log_head_gen_; }

  /// Drop the in-core inode table so subsequent reads hit the disk (test
  /// hook used by the consistency-checker tests).
  void ClearInodeCacheForTest() { ClearInodeTable(); }

 protected:
  Status LoadInode(InodeNum inum, DiskInode* out) override;
  Result<InodeNum> AllocInodeNum() override;
  Status ReleaseInodeNum(Inode* ino) override;
  Status NoteInodeDirty(Inode* ino) override;
  Result<BlockAddr> AllocBlockAddr(Inode* ino) override;
  void ReleaseBlockAddr(BlockAddr addr) override;
  Status EnterDataPath(Inode* ino) override;
  /// Readahead never crosses the containing segment: a coalesced file is
  /// contiguous *within* segments, and the segment is the unit the log
  /// writes (and the cleaner rewrites) with one disk request.
  uint64_t ExtentLimitBlocks(BlockAddr addr) const override {
    if (addr < geo_.seg_start) return 1;  // superblock / checkpoint regions
    return options_.segment_blocks -
           (addr - geo_.seg_start) % options_.segment_blocks;
  }

 private:
  friend class Cleaner;

  struct LogGeometry {
    uint64_t seg_start = 0;
    uint32_t nsegments = 0;
    uint32_t checkpoint_blocks = 0;
    BlockAddr checkpoint_a = 0;
    BlockAddr checkpoint_b = 0;
  };

  // ---- address helpers ----
  uint32_t SegOf(BlockAddr addr) const {
    return static_cast<uint32_t>((addr - geo_.seg_start) /
                                 options_.segment_blocks);
  }
  BlockAddr SegBase(uint32_t seg) const {
    return geo_.seg_start +
           static_cast<uint64_t>(seg) * options_.segment_blocks;
  }

  // ---- segment writer (segment_writer.cc) ----
  Status FlushLocked(TxnId txn);
  /// Move the write point to a fresh clean segment, waiting on the cleaner
  /// if none is available.
  Status AdvanceSegment();
  Status MaybePeriodicCheckpoint();

  // ---- checkpoint / recovery (checkpoint.cc, recovery.cc) ----
  Status WriteCheckpointLocked();
  Status RecoverFromCheckpointAndRollForward();
  /// Recompute every segment's live count by walking all inodes' maps.
  Status RebuildUsage();

  Options options_;
  LogGeometry geo_;
  InodeMap imap_;
  SegmentUsage usage_;

  uint32_t cur_seg_ = 0;
  uint32_t cur_off_ = 0;   // blocks already used in cur_seg_
  uint32_t cur_gen_ = 0;   // generation of cur_seg_
  int64_t next_seg_hint_ = -1;  // chosen early so summaries can chain
  uint64_t log_head_gen_ = 0;   // see mutation_gen()
  uint64_t next_write_seq_ = 1;
  uint64_t checkpoint_seq_ = 0;
  bool checkpoint_to_a_ = true;
  uint32_t segments_since_checkpoint_ = 0;

  SimMutex flush_lock_;
  SimProc* flush_owner_ = nullptr;  // detects re-entrant flushes
  WaitQueue clean_wait_;   // writer waits here for the cleaner
  Cleaner* cleaner_ = nullptr;
  bool cleaning_in_progress_ = false;
  LfsStats lfs_stats_;
  MetricHistogram* stall_blame_hist_ = nullptr;  // blame.lfs.cleaner_us

  /// Inodes are packed 16 to a block; a block stays live while any of its
  /// inodes is current. Rebuilt from the inode map at mount.
  std::unordered_map<BlockAddr, uint32_t> inode_block_refs_;
};

}  // namespace lfstx

#endif  // LFSTX_LFS_LFS_H_
