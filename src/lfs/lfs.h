// The log-structured file system (paper section 2, after Rosenblum &
// Ousterhout). Disk layout:
//
//   block 0                     superblock
//   blocks 1..C                 checkpoint region A
//   blocks C+1..2C              checkpoint region B
//   seg_start..end              segments (default 128 blocks each)
//
// All writes append to the current segment as partial segments (summary +
// payload, one contiguous disk request). Nothing is overwritten in place,
// so before-images of updated blocks survive until the cleaner reclaims
// them — the property the embedded transaction manager's abort path and
// crash recovery rely on (section 2, second characteristic).
#ifndef LFSTX_LFS_LFS_H_
#define LFSTX_LFS_LFS_H_

#include <unordered_map>
#include <vector>

#include "fs/vfs.h"
#include "lfs/checkpoint.h"
#include "lfs/inode_map.h"
#include "lfs/segment.h"
#include "lfs/segment_usage.h"
#include "sim/sync.h"

namespace lfstx {

class Cleaner;

/// \brief Log-structured file system.
class Lfs : public FsCore {
 public:
  static constexpr uint32_t kMagic = 0x4C465331;  // "LFS1"

  struct Options {
    uint32_t segment_blocks = kDefaultSegmentBlocks;
    uint32_t max_inodes = 4096;
    /// Write a checkpoint every N segment activations (and at unmount /
    /// after every cleaning round).
    uint32_t checkpoint_every_segments = 8;
    /// Roll-forward replay partitions (by inode-map block). Each partition
    /// applies on its own SimEnv process, so apply CPU overlaps the
    /// scanner's chain reads. 0 or 1 = sequential inline apply.
    uint32_t recovery_partitions = 4;
  };

  struct LfsStats {
    uint64_t partial_segments = 0;   ///< chunks written
    uint64_t segments_activated = 0;
    uint64_t blocks_written = 0;     ///< payload blocks through the log
    uint64_t checkpoints = 0;
    uint64_t fuzzy_checkpoints = 0;  ///< captured under the flush lock,
                                     ///< written without it
    uint64_t checkpoints_skipped = 0;  ///< log clean or image write in flight
    uint64_t flushes = 0;
    uint64_t writer_stalls = 0;      ///< waits for the cleaner
  };

  /// Filled by RecoverFromCheckpointAndRollForward; mirrored into the
  /// `recovery.*` metrics. All virtual-time fields are deterministic and
  /// byte-identical across execution backends.
  struct RecoveryStats {
    uint64_t checkpoint_seq = 0;   ///< seq of the checkpoint restored from
    uint64_t chunks = 0;           ///< chunks replayed off the chain
    uint64_t payload_blocks = 0;   ///< payload blocks read during the scan
    uint64_t apply_items = 0;      ///< imap updates applied by workers
    uint64_t discarded_txns = 0;   ///< staged txns with no commit marker
    uint64_t torn_chunks = 0;
    uint64_t stale_chunks = 0;
    uint32_t partitions = 0;       ///< replay worker count actually used
    SimTime scan_us = 0;           ///< chain walk + worker join (virtual)
    SimTime apply_us = 0;          ///< CPU consumed applying items (virtual)
    SimTime total_us = 0;          ///< whole recovery span (virtual)
  };

  Lfs(SimEnv* env, SimDisk* disk, BufferCache* cache);
  Lfs(SimEnv* env, SimDisk* disk, BufferCache* cache, Options options);
  ~Lfs() override;

  const char* fs_name() const override { return "LFS"; }
  Status Format() override;
  Status Mount() override;  ///< includes crash recovery (roll-forward)
  Status Unmount() override;
  Status SyncAll() override;
  Status SyncFile(InodeNum inum) override;

  /// WritebackHandler: an eviction of any dirty buffer triggers a full
  /// segment write — LFS always writes "a large number of dirty blocks"
  /// together (section 2).
  Status WriteBack(Buffer* buf) override;

  /// Flush everything dirty to the log. When `txn` is nonzero the chunks
  /// are tagged so roll-forward applies them atomically (commit path of
  /// the embedded transaction manager).
  Status Flush(TxnId txn = kNoTxn);

  /// Force a checkpoint now — the *fuzzy* path: the flush lock is held
  /// only for the in-memory capture; the image write goes to disk with
  /// transactions still committing. Safe because the capture is an atomic
  /// consistent snapshot (GenStamp-proven) and the dual regions alternate,
  /// so a crash mid-write falls back to the other region.
  Status Checkpoint();

  bool is_mounted() const { return mounted_; }
  const LfsStats& lfs_stats() const { return lfs_stats_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  uint32_t clean_segments() const { return usage_.clean_count(); }
  /// Segment currently receiving appends (online-fsck invariant:
  /// exactly the segments in state kActive).
  uint32_t current_segment() const { return cur_seg_; }
  uint32_t nsegments() const { return geo_.nsegments; }
  uint32_t segment_blocks() const { return options_.segment_blocks; }
  uint64_t seg_start() const { return geo_.seg_start; }
  const SegmentUsage& usage() const { return usage_; }
  const InodeMap& imap() const { return imap_; }

  /// Registered by the Cleaner so the writer can wait for free segments.
  void AttachCleaner(Cleaner* cleaner) { cleaner_ = cleaner; }

  /// Clean segments held back from regular flushes for the cleaner's own
  /// copy-forward writes. Sized for the worst single pass: the victim's
  /// live blocks plus fresh metadata (up to two segment boundaries), plus
  /// the stalled writer's drained backlog on the engagement's first pass.
  static constexpr uint32_t kCleanerReserveSegments = 3;

  /// Bumped every time the log head moves (chunk sealed, segment advanced,
  /// format, recovery restore/roll-forward). GenStamp<Lfs> assertions use
  /// it to prove the head stayed put across a multi-block disk write that
  /// assumed exclusive ownership of the log (see check/gen_stamp.h).
  uint64_t mutation_gen() const { return log_head_gen_; }

  /// Drop the in-core inode table so subsequent reads hit the disk (test
  /// hook used by the consistency-checker tests).
  void ClearInodeCacheForTest() { ClearInodeTable(); }

  /// Test hook for the differential-recovery test: restrict the next
  /// Mount to one checkpoint region (0 = A, 1 = B, -1 = pick newest).
  void ForceCheckpointRegionForTest(int region) {
    force_checkpoint_region_ = region;
  }

 protected:
  Status LoadInode(InodeNum inum, DiskInode* out) override;
  Result<InodeNum> AllocInodeNum() override;
  Status ReleaseInodeNum(Inode* ino) override;
  Status NoteInodeDirty(Inode* ino) override;
  Result<BlockAddr> AllocBlockAddr(Inode* ino) override;
  void ReleaseBlockAddr(BlockAddr addr) override;
  Status EnterDataPath(Inode* ino) override;
  /// Readahead never crosses the containing segment: a coalesced file is
  /// contiguous *within* segments, and the segment is the unit the log
  /// writes (and the cleaner rewrites) with one disk request.
  uint64_t ExtentLimitBlocks(BlockAddr addr) const override {
    if (addr < geo_.seg_start) return 1;  // superblock / checkpoint regions
    return options_.segment_blocks -
           (addr - geo_.seg_start) % options_.segment_blocks;
  }

 private:
  friend class Cleaner;

  struct LogGeometry {
    uint64_t seg_start = 0;
    uint32_t nsegments = 0;
    uint32_t checkpoint_blocks = 0;
    BlockAddr checkpoint_a = 0;
    BlockAddr checkpoint_b = 0;
  };

  // ---- address helpers ----
  uint32_t SegOf(BlockAddr addr) const {
    return static_cast<uint32_t>((addr - geo_.seg_start) /
                                 options_.segment_blocks);
  }
  BlockAddr SegBase(uint32_t seg) const {
    return geo_.seg_start +
           static_cast<uint64_t>(seg) * options_.segment_blocks;
  }

  // ---- segment writer (segment_writer.cc) ----
  Status FlushLocked(TxnId txn);
  /// Move the write point to a fresh clean segment, waiting on the cleaner
  /// if none is available.
  Status AdvanceSegment();
  /// One writer-stall edge: wake the cleaner and wait for it to reclaim
  /// space, dropping the flush lock for the duration (hand-over-hand).
  /// Returns non-OK only if the simulation stopped.
  Status StallForCleaner();
  Status MaybePeriodicCheckpoint();

  // ---- checkpoint / recovery (checkpoint.cc, recovery.cc) ----
  /// Snapshot the checkpoint state and pick the target region. Pure CPU
  /// under the flush lock (GenStamp-asserted): the capture is atomic even
  /// when transactions are mid-flight — the fuzzy-checkpoint invariant.
  Status CaptureCheckpointLocked(CheckpointData* cp, BlockAddr* region);
  /// Encode and write a captured image. Does not require the flush lock.
  Status WriteCheckpointImage(const CheckpointData& cp, BlockAddr region);
  /// Capture + write under the flush lock (format, unmount, periodic,
  /// cleaner). Skips when the log is clean or a fuzzy image write is in
  /// flight (two concurrent region writes could tear both regions).
  Status WriteCheckpointLocked();
  /// True when nothing was appended since the last capture — the on-disk
  /// image is already current.
  bool CheckpointIsCleanLocked() const {
    return next_write_seq_ == last_cp_write_seq_ &&
           cur_seg_ == last_cp_seg_ && cur_off_ == last_cp_off_;
  }
  Status RecoverFromCheckpointAndRollForward();
  /// Recompute every segment's live count by walking all inodes' maps.
  Status RebuildUsage();

  Options options_;
  LogGeometry geo_;
  InodeMap imap_;
  SegmentUsage usage_;

  uint32_t cur_seg_ = 0;
  uint32_t cur_off_ = 0;   // blocks already used in cur_seg_
  uint32_t cur_gen_ = 0;   // generation of cur_seg_
  int64_t next_seg_hint_ = -1;  // chosen early so summaries can chain
  uint64_t log_head_gen_ = 0;   // see mutation_gen()
  uint64_t next_write_seq_ = 1;
  uint64_t checkpoint_seq_ = 0;
  bool checkpoint_to_a_ = true;
  uint32_t segments_since_checkpoint_ = 0;
  /// State at the last checkpoint capture, for skip-if-clean. Stale usage
  /// counts (which can change without the head moving) are fine to leave
  /// uncheckpointed: recovery rebuilds usage exactly.
  uint64_t last_cp_write_seq_ = 0;
  uint32_t last_cp_seg_ = ~0u;
  uint32_t last_cp_off_ = ~0u;
  /// A fuzzy image write is on the platter without the flush lock held.
  /// Locked-path writers must not start a concurrent write to the other
  /// region (a crash could then find both regions torn).
  bool checkpoint_write_in_flight_ = false;
  int force_checkpoint_region_ = -1;  // see ForceCheckpointRegionForTest

  /// Serializes fuzzy checkpointers; ordered before flush_lock_ (never
  /// acquired while holding it). Held across the image disk write.
  SimMutex checkpoint_lock_;
  SimMutex flush_lock_;
  SimProc* flush_owner_ = nullptr;  // detects re-entrant flushes
  WaitQueue clean_wait_;   // writer waits here for the cleaner
  Cleaner* cleaner_ = nullptr;
  bool cleaning_in_progress_ = false;
  LfsStats lfs_stats_;
  RecoveryStats recovery_stats_;
  MetricHistogram* stall_blame_hist_ = nullptr;  // blame.lfs.cleaner_us

  /// Inodes are packed 16 to a block; a block stays live while any of its
  /// inodes is current. Rebuilt from the inode map at mount.
  std::unordered_map<BlockAddr, uint32_t> inode_block_refs_;
};

}  // namespace lfstx

#endif  // LFSTX_LFS_LFS_H_
