// The operating system's buffer cache (paper sections 2-4).
//
// Frames are keyed by (file, logical block). The cache is LRU with pinning;
// dirty victims are pushed back to the owning file system through a
// WritebackHandler, because the write path is what distinguishes FFS
// (overwrite in place) from LFS (append to the log).
//
// Embedded-transaction support is the paper's inode extension: besides the
// normal per-file dirty list, a buffer can sit on a *transaction list*
// (MarkTxnDirty). Such buffers are unevictable until the transaction
// commits (moving them to the dirty list) or aborts (invalidating them) —
// implementation restriction 1 of section 4.5.
#ifndef LFSTX_CACHE_BUFFER_CACHE_H_
#define LFSTX_CACHE_BUFFER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "disk/disk_model.h"
#include "fs/fs_types.h"
#include "sim/sim_env.h"

namespace lfstx {

struct BufferKey {
  FileId file = 0;
  uint64_t lblock = 0;
  bool operator==(const BufferKey&) const = default;
  bool operator<(const BufferKey& o) const {
    return file != o.file ? file < o.file : lblock < o.lblock;
  }
};

/// \brief One cached 4 KiB block.
struct Buffer {
  BufferKey key;
  char data[kBlockSize];
  bool dirty = false;
  bool txn_dirty = false;  ///< on a transaction list, unevictable
  bool prefetched = false;  ///< installed by readahead, never referenced yet
  TxnId txn_owner = kNoTxn;
  int pin_count = 0;
  bool io_in_progress = false;  ///< being loaded or written back
  BlockAddr disk_addr = kInvalidBlock;  ///< where this version lives on disk
  SimTime dirtied_at = 0;

  // Cache-internal bookkeeping.
  std::list<Buffer*>::iterator lru_pos;
  bool in_lru = false;
  std::unique_ptr<WaitQueue> io_wait;
};

/// \brief File-system-side flush hook.
class WritebackHandler {
 public:
  virtual ~WritebackHandler() = default;
  /// Write the buffer's current contents to stable storage and leave it
  /// clean. May block on disk I/O. For LFS this appends to the log and
  /// reassigns buf->disk_addr; for FFS it overwrites in place.
  virtual Status WriteBack(Buffer* buf) = 0;
};

/// \brief LRU buffer cache shared by the whole simulated kernel.
class BufferCache {
 public:
  /// `instance` namespaces the registered metrics: empty registers
  /// "cache.hits", "lfs" registers "cache.lfs.hits", and so on. Rigs that
  /// host more than one file system must pass distinct instances or the
  /// registry's first-wins rule silently drops the second cache's numbers
  /// (the same hazard PR 3 fixed for `txn.*`/`lock.*`).
  BufferCache(SimEnv* env, size_t capacity_blocks, std::string instance = "");
  ~BufferCache();

  void set_writeback(WritebackHandler* handler) { writeback_ = handler; }
  SimEnv* env() const { return env_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return buffers_.size(); }

  /// Pinned, valid buffer for `key`, calling `load` to fill it on a miss.
  /// Concurrent misses of the same block coalesce on one load.
  Result<Buffer*> Get(BufferKey key, std::function<Status(char*)> load);

  /// Pinned buffer without loading (caller will overwrite it fully, or the
  /// block is brand new). Contents are zeroed on a miss.
  Result<Buffer*> GetNoLoad(BufferKey key);

  /// Buffer if resident (and pins it), nullptr otherwise. Never does I/O.
  Buffer* Peek(BufferKey key);

  /// True if a frame for `key` exists, even one mid-I/O. Never pins and
  /// never blocks — the readahead extent scan uses it to stop at blocks
  /// that are already cached.
  bool Resident(BufferKey key) const { return buffers_.count(key) != 0; }

  /// Install a clean, unpinned frame holding prefetched contents (clustered
  /// readahead). Returns false without side effects when the key is already
  /// resident (a racing writer or reader owns the truth) or when no frame
  /// can be reclaimed without a write-back — prefetches must never force
  /// dirty eviction. The frame is flagged `prefetched` until its first
  /// reference; frames evicted still flagged count as wasted readahead.
  bool InstallPrefetched(BufferKey key, const char* data, BlockAddr disk_addr);

  /// Record one clustered readahead request that fetched `extra_blocks`
  /// beyond the demand block (called by the file system's read path when it
  /// issues the multi-block disk request).
  void NoteReadahead(uint64_t extra_blocks) {
    stats_.readahead_issued++;
    stats_.readahead_blocks += extra_blocks;
  }

  /// Unpin. Every successful Get/GetNoLoad/Peek must be paired with one.
  void Release(Buffer* buf);

  /// Move to the ordinary dirty list (write-back later / at sync).
  void MarkDirty(Buffer* buf);
  /// Move to `txn`'s transaction list: unevictable, not visible to Sync.
  void MarkTxnDirty(Buffer* buf, TxnId txn);
  /// Called by the file system after it persisted the buffer.
  void MarkClean(Buffer* buf);

  /// Detach and return txn's buffers (commit path: caller re-marks them
  /// dirty and flushes). Buffers come back pinned once each.
  std::vector<Buffer*> TakeTxnBuffers(TxnId txn);
  /// Drop txn's buffers entirely (abort path): the on-disk before-images
  /// become the visible versions again.
  void InvalidateTxnBuffers(TxnId txn);

  /// Snapshot of dirty (non-transaction) buffers, optionally only those
  /// dirtied at or before `before`. Buffers are returned pinned.
  std::vector<Buffer*> CollectDirty(SimTime before = ~SimTime{0});
  /// Dirty buffers belonging to one file, pinned.
  std::vector<Buffer*> CollectDirtyFile(FileId file);

  /// Invalidate all buffers of a file (delete/truncate). Pinned or
  /// transaction buffers trip an assertion — callers must quiesce first.
  void DropFile(FileId file, uint64_t from_lblock = 0);

  /// Drop every buffer (unmount path). Asserts none are pinned, dirty, or
  /// transaction-dirty — callers must SyncAll first.
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_evictions = 0;
    uint64_t readahead_issued = 0;  ///< clustered (multi-block) read requests
    uint64_t readahead_blocks = 0;  ///< blocks fetched beyond demand blocks
    uint64_t readahead_hits = 0;    ///< first references to prefetched frames
    uint64_t readahead_wasted = 0;  ///< prefetched frames dropped unreferenced
  };
  const Stats& stats() const { return stats_; }
  size_t dirty_count() const { return dirty_count_; }

  /// Instantaneous census used by the quiesce-point checkers (CheckBufferCache
  /// and CheckTxn in src/check/): none of these may be nonzero at a true
  /// quiescent point except after explicit pinning by the caller.
  size_t pinned_count() const;
  size_t txn_dirty_count() const;
  size_t io_in_progress_count() const;

  /// Deep structural self-check: LRU list ↔ hash map coherence, pin-count
  /// sanity, dirty accounting. Returns one message per violated invariant;
  /// empty means structurally sound. Cheap enough to run after every test
  /// round (O(resident buffers)).
  std::vector<std::string> CheckInvariants() const;

  /// Bumped by every logical content-state change: dirty/clean transitions,
  /// transaction-list moves, invalidations, drops. Frame churn that leaves
  /// content state alone (inserts, clean evictions, LRU touches) does not
  /// count. GenStamp<BufferCache> assertions and the `gens` checker use it
  /// to detect foreign mutation across regions that assumed cache contents
  /// were stable (see check/gen_stamp.h).
  uint64_t mutation_gen() const { return mutation_gen_; }

  /// While the counter is nonzero, eviction only reclaims clean frames
  /// (never calls the WritebackHandler). The LFS segment writer and the
  /// cleaner hold this across their critical phases so cache misses inside
  /// a flush cannot recurse into another flush. Nestable.
  void PushNoDirtyEviction() { no_dirty_eviction_++; }
  void PopNoDirtyEviction() { no_dirty_eviction_--; }

 private:
  Result<Buffer*> Frame(BufferKey key, bool* fresh);
  Status EvictOne();
  /// Reclaim one clean, unpinned frame, preferring never-referenced
  /// prefetches over demand-loaded data. Returns false if every clean
  /// frame is pinned or in flight.
  bool EvictCleanOne();
  void TouchLru(Buffer* buf);
  /// First-reference bookkeeping shared by Get/Peek hit paths.
  void NoteReferenced(Buffer* buf) {
    if (buf->prefetched) {
      buf->prefetched = false;
      stats_.readahead_hits++;
    }
  }
  std::string MetricName(const char* leaf) const;

  SimEnv* env_;
  size_t capacity_;
  std::string instance_;
  WritebackHandler* writeback_ = nullptr;
  std::map<BufferKey, std::unique_ptr<Buffer>> buffers_;
  std::list<Buffer*> lru_;  // front = coldest
  size_t dirty_count_ = 0;
  int no_dirty_eviction_ = 0;
  uint64_t mutation_gen_ = 0;
  Stats stats_;
};

}  // namespace lfstx

#endif  // LFSTX_CACHE_BUFFER_CACHE_H_
