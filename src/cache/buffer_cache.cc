#include "cache/buffer_cache.h"

#include <cassert>
#include <cstring>

#include "common/check_macros.h"

namespace lfstx {

BufferCache::BufferCache(SimEnv* env, size_t capacity_blocks,
                         std::string instance)
    : env_(env), capacity_(capacity_blocks), instance_(std::move(instance)) {
  assert(capacity_ >= 8);
  MetricsRegistry* m = env_->metrics();
  auto g = [&](const char* leaf, const char* unit, const char* help,
               std::function<double()> fn) {
    m->AddGauge(this, MetricName(leaf), unit, help, std::move(fn));
  };
  g("hits", "count", "buffer cache hits",
    [this] { return static_cast<double>(stats_.hits); });
  g("misses", "count", "buffer cache misses",
    [this] { return static_cast<double>(stats_.misses); });
  g("evictions", "count", "frames evicted",
    [this] { return static_cast<double>(stats_.evictions); });
  g("dirty_evictions", "count", "evictions that forced a write-back",
    [this] { return static_cast<double>(stats_.dirty_evictions); });
  g("resident", "blocks", "frames currently cached",
    [this] { return static_cast<double>(buffers_.size()); });
  g("dirty", "blocks", "dirty frames right now",
    [this] { return static_cast<double>(dirty_count_); });
  g("capacity", "blocks", "configured frame count",
    [this] { return static_cast<double>(capacity_); });
  g("readahead.issued", "count", "clustered readahead requests",
    [this] { return static_cast<double>(stats_.readahead_issued); });
  g("readahead.blocks", "blocks", "blocks prefetched beyond demand blocks",
    [this] { return static_cast<double>(stats_.readahead_blocks); });
  g("readahead.hits", "count", "first references to prefetched frames",
    [this] { return static_cast<double>(stats_.readahead_hits); });
  g("readahead.wasted", "count", "prefetched frames dropped unreferenced",
    [this] { return static_cast<double>(stats_.readahead_wasted); });
}

std::string BufferCache::MetricName(const char* leaf) const {
  return instance_.empty() ? std::string("cache.") + leaf
                           : "cache." + instance_ + "." + leaf;
}

BufferCache::~BufferCache() { env_->metrics()->DropOwner(this); }

void BufferCache::TouchLru(Buffer* buf) {
  if (buf->in_lru) lru_.erase(buf->lru_pos);
  lru_.push_back(buf);
  buf->lru_pos = std::prev(lru_.end());
  buf->in_lru = true;
}

Result<Buffer*> BufferCache::Frame(BufferKey key, bool* fresh) {
  env_->Consume(env_->costs().buffer_lookup_us);
  for (;;) {
    auto it = buffers_.find(key);
    if (it != buffers_.end()) {
      Buffer* buf = it->second.get();
      if (buf->io_in_progress) {
        // Another process is loading or writing back this very block; wait
        // for it to settle, then retry the lookup (it may have been evicted).
        buf->pin_count++;
        if (buf->io_wait == nullptr) {
          buf->io_wait = std::make_unique<WaitQueue>(env_);
        }
        WaitQueue* wq = buf->io_wait.get();
        WakeReason r = wq->Sleep();
        buf->pin_count--;
        if (r == WakeReason::kStopped) {
          return Status::Busy("simulation stopped during buffer wait");
        }
        continue;
      }
      buf->pin_count++;
      TouchLru(buf);
      *fresh = false;
      stats_.hits++;
      NoteReferenced(buf);
      return buf;
    }
    break;
  }

  while (buffers_.size() >= capacity_) {
    LFSTX_RETURN_IF_ERROR(EvictOne());
  }
  auto owned = std::make_unique<Buffer>();
  Buffer* buf = owned.get();
  buf->key = key;
  memset(buf->data, 0, sizeof(buf->data));
  buf->pin_count = 1;
  buffers_.emplace(key, std::move(owned));
  TouchLru(buf);
  *fresh = true;
  stats_.misses++;
  return buf;
}

bool BufferCache::EvictCleanOne() {
  // Coldest eligible frame wins, except that a never-referenced prefetch in
  // the colder half of the LRU goes first — stale readahead must die before
  // demand-loaded data. The preference deliberately excludes the hot half:
  // a just-installed prefetch run sits there, and preferring it would make
  // each InstallPrefetched of a full cache evict the run's previous frame.
  Buffer* victim = nullptr;
  const size_t cold_limit = lru_.size() / 2;
  size_t pos = 0;
  for (Buffer* b : lru_) {
    const bool cold = pos++ < cold_limit;
    if (!cold && victim != nullptr) break;
    if (b->pin_count > 0 || b->txn_dirty || b->io_in_progress || b->dirty) {
      continue;
    }
    if (b->prefetched && cold) {
      victim = b;
      break;
    }
    if (victim == nullptr) victim = b;
  }
  if (victim == nullptr) return false;
  if (victim->prefetched) stats_.readahead_wasted++;
  stats_.evictions++;
  lru_.erase(victim->lru_pos);
  victim->in_lru = false;
  buffers_.erase(victim->key);
  return true;
}

Status BufferCache::EvictOne() {
  // Pass 1: prefer a clean victim — cheap, and safe even when the eviction
  // happens re-entrantly inside a file system flush.
  if (EvictCleanOne()) return Status::OK();
  if (no_dirty_eviction_ > 0) {
    return Status::NoSpace(
        "buffer cache exhausted during flush: no clean frame available");
  }
  // Pass 2: write back the coldest dirty victim.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Buffer* victim = *it;
    if (victim->pin_count > 0 || victim->txn_dirty || victim->io_in_progress) {
      continue;
    }
    if (victim->dirty) {
      LFSTX_CHECK(writeback_ != nullptr,
                  "dirty eviction with no writeback handler attached");
      LFSTX_TRACE(env_->tracer(), TraceCat::kCache, "dirty_eviction",
                  {"file", victim->key.file}, {"lblock", victim->key.lblock},
                  {"resident", static_cast<uint64_t>(buffers_.size())});
      victim->io_in_progress = true;
      victim->pin_count++;
      Status s = writeback_->WriteBack(victim);
      victim->pin_count--;
      victim->io_in_progress = false;
      if (victim->io_wait != nullptr) victim->io_wait->WakeAll();
      LFSTX_RETURN_IF_ERROR(s);
      stats_.dirty_evictions++;
      // The world may have changed while we were writing; restart the scan.
      if (victim->pin_count > 0 || victim->dirty || victim->txn_dirty) {
        return Status::OK();  // someone re-dirtied or pinned it; try again
      }
    }
    stats_.evictions++;
    lru_.erase(victim->lru_pos);
    victim->in_lru = false;
    buffers_.erase(victim->key);
    return Status::OK();
  }
  return Status::NoSpace(
      "buffer cache exhausted: all frames pinned or transaction-dirty");
}

Result<Buffer*> BufferCache::Get(BufferKey key,
                                 std::function<Status(char*)> load) {
  bool fresh = false;
  LFSTX_ASSIGN_OR_RETURN(Buffer * buf, Frame(key, &fresh));
  if (fresh) {
    buf->io_in_progress = true;
    Status s = load(buf->data);
    buf->io_in_progress = false;
    if (buf->io_wait != nullptr) buf->io_wait->WakeAll();
    if (!s.ok()) {
      buf->pin_count--;
      if (buf->pin_count == 0 && !buf->dirty) {
        lru_.erase(buf->lru_pos);
        buffers_.erase(key);
      }
      return s;
    }
  }
  return buf;
}

Result<Buffer*> BufferCache::GetNoLoad(BufferKey key) {
  bool fresh = false;
  return Frame(key, &fresh);
}

Buffer* BufferCache::Peek(BufferKey key) {
  auto it = buffers_.find(key);
  if (it == buffers_.end() || it->second->io_in_progress) return nullptr;
  it->second->pin_count++;
  NoteReferenced(it->second.get());
  return it->second.get();
}

bool BufferCache::InstallPrefetched(BufferKey key, const char* data,
                                    BlockAddr disk_addr) {
  if (buffers_.count(key) != 0) return false;
  while (buffers_.size() >= capacity_) {
    if (!EvictCleanOne()) return false;
  }
  auto owned = std::make_unique<Buffer>();
  Buffer* buf = owned.get();
  buf->key = key;
  memcpy(buf->data, data, kBlockSize);
  buf->disk_addr = disk_addr;
  buf->prefetched = true;
  buffers_.emplace(key, std::move(owned));
  TouchLru(buf);
  return true;
}

void BufferCache::Release(Buffer* buf) {
  LFSTX_CHECK(buf->pin_count > 0,
              "Release without a matching Get/Peek (pin underflow)");
  buf->pin_count--;
}

void BufferCache::MarkDirty(Buffer* buf) {
  if (!buf->dirty) {
    buf->dirtied_at = env_->Now();
    dirty_count_++;
  }
  buf->dirty = true;
  buf->txn_dirty = false;
  buf->txn_owner = kNoTxn;
  mutation_gen_++;
}

void BufferCache::MarkTxnDirty(Buffer* buf, TxnId txn) {
  LFSTX_CHECK(txn != kNoTxn,
              "transaction list needs a real owner (buffers marked with "
              "kNoTxn would never commit or abort)");
  if (buf->dirty) dirty_count_--;
  buf->txn_dirty = true;
  buf->txn_owner = txn;
  buf->dirty = false;  // invisible to the syncer until commit
  buf->dirtied_at = env_->Now();
  mutation_gen_++;
}

void BufferCache::MarkClean(Buffer* buf) {
  if (buf->dirty) dirty_count_--;
  buf->dirty = false;
  buf->txn_dirty = false;
  buf->txn_owner = kNoTxn;
  mutation_gen_++;
}

std::vector<Buffer*> BufferCache::TakeTxnBuffers(TxnId txn) {
  std::vector<Buffer*> out;
  for (auto& [key, buf] : buffers_) {
    if (buf->txn_dirty && buf->txn_owner == txn) {
      buf->pin_count++;
      out.push_back(buf.get());
    }
  }
  return out;
}

void BufferCache::InvalidateTxnBuffers(TxnId txn) {
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    Buffer* buf = it->second.get();
    if (buf->txn_dirty && buf->txn_owner == txn) {
      LFSTX_CHECK(buf->pin_count == 0,
                  "aborting transaction's buffer is still pinned — a live "
                  "reference would survive the invalidation");
      if (buf->dirty) dirty_count_--;
      if (buf->in_lru) lru_.erase(buf->lru_pos);
      it = buffers_.erase(it);
      mutation_gen_++;
    } else {
      ++it;
    }
  }
}

std::vector<Buffer*> BufferCache::CollectDirty(SimTime before) {
  std::vector<Buffer*> out;
  for (auto& [key, buf] : buffers_) {
    if (buf->dirty && !buf->io_in_progress && buf->dirtied_at <= before) {
      buf->pin_count++;
      out.push_back(buf.get());
    }
  }
  return out;
}

std::vector<Buffer*> BufferCache::CollectDirtyFile(FileId file) {
  std::vector<Buffer*> out;
  auto it = buffers_.lower_bound(BufferKey{file, 0});
  for (; it != buffers_.end() && it->first.file == file; ++it) {
    Buffer* buf = it->second.get();
    if (buf->dirty && !buf->io_in_progress) {
      buf->pin_count++;
      out.push_back(buf);
    }
  }
  return out;
}

void BufferCache::DropFile(FileId file, uint64_t from_lblock) {
  auto it = buffers_.lower_bound(BufferKey{file, from_lblock});
  while (it != buffers_.end() && it->first.file == file) {
    Buffer* buf = it->second.get();
    LFSTX_CHECK(
        buf->pin_count == 0 && !buf->txn_dirty && !buf->io_in_progress,
        "DropFile hit a pinned, transaction, or in-flight buffer — the "
        "caller must quiesce the file first");
    if (buf->dirty) dirty_count_--;
    if (buf->prefetched) stats_.readahead_wasted++;
    if (buf->in_lru) lru_.erase(buf->lru_pos);
    it = buffers_.erase(it);
    mutation_gen_++;
  }
}

size_t BufferCache::pinned_count() const {
  size_t n = 0;
  for (const auto& [key, buf] : buffers_) {
    if (buf->pin_count > 0) n++;
  }
  return n;
}

size_t BufferCache::txn_dirty_count() const {
  size_t n = 0;
  for (const auto& [key, buf] : buffers_) {
    if (buf->txn_dirty) n++;
  }
  return n;
}

size_t BufferCache::io_in_progress_count() const {
  size_t n = 0;
  for (const auto& [key, buf] : buffers_) {
    if (buf->io_in_progress) n++;
  }
  return n;
}

std::vector<std::string> BufferCache::CheckInvariants() const {
  std::vector<std::string> problems;
  auto problem = [&](std::string p) { problems.push_back(std::move(p)); };

  if (buffers_.size() > capacity_) {
    problem("resident " + std::to_string(buffers_.size()) +
            " buffers exceed capacity " + std::to_string(capacity_));
  }
  // Every frame the map owns must be on the LRU list exactly once, with a
  // self-consistent back-pointer, and the accounting counters must match a
  // full recount.
  size_t in_lru = 0;
  size_t dirty = 0;
  for (const auto& [key, buf] : buffers_) {
    std::string who = "buffer (file " + std::to_string(key.file) +
                      ", lblock " + std::to_string(key.lblock) + ")";
    if (!(buf->key == key)) {
      problem(who + " is keyed under a different map slot");
    }
    if (buf->pin_count < 0) {
      problem(who + " has negative pin count " +
              std::to_string(buf->pin_count));
    }
    if (buf->in_lru) {
      in_lru++;
      if (*buf->lru_pos != buf.get()) {
        problem(who + " LRU back-pointer does not point at itself");
      }
    } else {
      problem(who + " is resident but not on the LRU list");
    }
    if (buf->dirty) dirty++;
    if (buf->dirty && buf->txn_dirty) {
      problem(who + " is on both the dirty and the transaction list");
    }
    if (buf->txn_dirty && buf->txn_owner == kNoTxn) {
      problem(who + " is transaction-dirty but owned by no transaction");
    }
    if (buf->prefetched && (buf->dirty || buf->txn_dirty)) {
      problem(who + " is prefetched yet dirty — every dirtying path must "
                    "reference (and unflag) the frame first");
    }
    if (!buf->txn_dirty && buf->txn_owner != kNoTxn) {
      problem(who + " carries stale transaction owner " +
              std::to_string(buf->txn_owner));
    }
  }
  if (lru_.size() != in_lru || lru_.size() != buffers_.size()) {
    problem("LRU list has " + std::to_string(lru_.size()) +
            " entries, map has " + std::to_string(buffers_.size()));
  }
  for (Buffer* buf : lru_) {
    auto it = buffers_.find(buf->key);
    if (it == buffers_.end() || it->second.get() != buf) {
      problem("LRU entry (file " + std::to_string(buf->key.file) +
              ", lblock " + std::to_string(buf->key.lblock) +
              ") is not resident in the map");
    }
  }
  if (dirty != dirty_count_) {
    problem("dirty_count says " + std::to_string(dirty_count_) +
            ", recount says " + std::to_string(dirty));
  }
  return problems;
}

void BufferCache::Clear() {
  for (auto& [key, buf] : buffers_) {
    LFSTX_CHECK(buf->pin_count == 0 && !buf->dirty && !buf->txn_dirty,
                "Clear would discard a pinned or unwritten buffer — the "
                "caller must SyncAll first");
    if (buf->prefetched) stats_.readahead_wasted++;
  }
  buffers_.clear();
  lru_.clear();
  dirty_count_ = 0;
  mutation_gen_++;
}



}  // namespace lfstx
