// User-level write-ahead log manager. Appends are buffered in user space;
// FlushTo writes the tail through write()/fsync() system calls, optionally
// batching concurrent committers (group commit, DeWitt et al. [3]).
#ifndef LFSTX_LIBTP_LOG_MANAGER_H_
#define LFSTX_LIBTP_LOG_MANAGER_H_

#include <functional>
#include <string>

#include "harness/machine.h"
#include "libtp/log_record.h"
#include "sim/sync.h"

namespace lfstx {

/// \brief Append-only WAL over a regular file.
class LogManager {
 public:
  struct Options {
    /// If nonzero, a flusher holds commits for up to this long hoping more
    /// arrive (amortizes the fsync). Zero = flush immediately.
    SimTime group_commit_wait = 0;
    /// Stop waiting once this many commits are pending.
    uint32_t group_commit_batch = 4;
    /// Preallocate the log file to this size at creation so appends stay
    /// inside a contiguous, already-mapped region (no inode updates on the
    /// fsync path — the classic dedicated-log-region setup the paper's
    /// user-level system assumes). Truncation reuses the region in place;
    /// record epochs prevent stale replay.
    uint64_t preallocate_bytes = 8 * 1024 * 1024;
  };

  struct Stats {
    uint64_t records = 0;
    uint64_t flushes = 0;       ///< fsync batches
    uint64_t bytes_appended = 0;
    uint64_t group_commit_waits = 0;
  };

  explicit LogManager(Kernel* kernel);
  LogManager(Kernel* kernel, Options options);
  ~LogManager();

  /// Create/open the log file.
  Status Open(const std::string& path);
  Status Close();

  /// Append a record (buffered). Fills rec->prev_lsn's successor chain via
  /// the caller; returns the record's LSN.
  Result<Lsn> Append(const LogRecord& rec);

  /// Make everything up to and including `lsn` durable. `txn` identifies
  /// the committing transaction (kNoTxn for non-commit flushes: buffer
  /// pool WAL pushes, truncation, close); it names the group-commit
  /// leader in blame attribution (wait_edge events,
  /// blame.log.leader_us).
  Status FlushTo(Lsn lsn, TxnId txn = kNoTxn);

  /// Read one record at `lsn` (served from the user-space tail when not
  /// yet flushed).
  Result<LogRecord> ReadRecord(Lsn lsn);

  /// Scan the whole retained log in order; stops cleanly at a torn tail.
  Status ScanAll(
      const std::function<Status(Lsn, const LogRecord&)>& fn);

  /// Scan starting at `from` (clamped to the truncation point). `from`
  /// must be a record-start LSN — the checkpoint low-water mark always is.
  Status ScanFrom(Lsn from,
                  const std::function<Status(Lsn, const LogRecord&)>& fn);

  /// Persist the checkpoint position and the replay low-water mark in the
  /// log file header (one header write + fsync). The low-water mark is
  /// the min of the checkpoint-begin LSN and every live transaction's
  /// first LSN: all page updates below it are flushed, so redo may start
  /// there, and no loser has records before it, so undo stays complete.
  Status SetCheckpointLwm(Lsn checkpoint_lsn, Lsn low_water);

  /// Discard all records (checkpoint truncation). Only valid when no
  /// transaction is active; LSNs remain monotonic across truncations via
  /// the base-LSN header at the front of the log file.
  Status Truncate();

  Lsn next_lsn() const { return next_lsn_; }
  Lsn durable_lsn() const { return durable_lsn_; }
  /// LSN of the first retained record (truncation point).
  Lsn base_lsn() const { return base_lsn_; }
  /// LSN of the last checkpoint record (0 = none since truncation).
  Lsn checkpoint_lsn() const { return checkpoint_lsn_; }
  /// Replay may start here; 0 (pre-LWM log files) means scan everything.
  Lsn low_water_lsn() const { return low_water_lsn_; }
  /// Differential-recovery test hook: forget the low-water mark so the
  /// next Recover scans from the truncation point.
  void IgnoreLwmForTest() { low_water_lsn_ = 0; }
  uint32_t epoch() const { return epoch_; }
  const Stats& stats() const { return stats_; }

 private:
  Status WriteHeader();
  Kernel* kernel_;
  Options options_;
  InodeNum log_ino_ = kInvalidInode;
  std::string tail_;       ///< appended but not yet written
  Lsn tail_base_ = 0;      ///< LSN of tail_[0]
  Lsn base_lsn_ = 0;   ///< LSN of the first retained byte
  Lsn checkpoint_lsn_ = 0;
  Lsn low_water_lsn_ = 0;
  uint32_t epoch_ = 0;
  Lsn next_lsn_ = 0;
  Lsn durable_lsn_ = 0;
  bool flusher_active_ = false;
  TxnId flusher_txn_ = kNoTxn;  ///< txn leading the in-flight flush
  uint32_t pending_commits_ = 0;
  WaitQueue flushed_;
  MetricHistogram* blame_hist_ = nullptr;  // blame.log.leader_us
  Stats stats_;
};

}  // namespace lfstx

#endif  // LFSTX_LIBTP_LOG_MANAGER_H_
