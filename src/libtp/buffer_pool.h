// The user-level buffer manager of section 3: "to reduce disk traffic, the
// system maintains a least-recently-used (LRU) buffer cache of database
// pages in shared memory".
//
// Every pool operation acquires and releases a shared-memory latch; on the
// paper's DECstation (no hardware test-and-set) each latch operation is a
// semaphore system call — SimEnv::LatchOp charges accordingly, and this is
// the entire user-vs-kernel performance gap of Figure 4.
//
// Steal/no-force with the WAL rule: a dirty page may be written back any
// time, but only after the log covering its last update is durable.
#ifndef LFSTX_LIBTP_BUFFER_POOL_H_
#define LFSTX_LIBTP_BUFFER_POOL_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/machine.h"
#include "libtp/log_manager.h"

namespace lfstx {

/// \brief A database page pinned in the user-level pool.
struct DbPage {
  char data[kBlockSize];
  uint32_t file_ref = 0;
  uint64_t pageno = 0;
  bool dirty = false;
  int pins = 0;
  /// Snapshot taken when the page was fetched with write intent; the
  /// before/after diff becomes the log record.
  std::unique_ptr<std::string> snapshot;

  std::list<DbPage*>::iterator lru_pos;
  bool in_lru = false;

  /// Page LSN lives in the first 8 bytes of every database page.
  Lsn lsn() const;
  void set_lsn(Lsn lsn);
};

/// \brief User-level LRU page cache over files accessed with read()/write().
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
  };

  BufferPool(Kernel* kernel, LogManager* log, size_t capacity_pages);
  ~BufferPool();

  /// Open (or create) a database file; returns a small registry handle.
  Result<uint32_t> RegisterFile(const std::string& path, bool create);
  Status CloseAll();

  /// Pinned page; loads through a read() system call on a miss. With
  /// `write_intent` a pre-image snapshot is taken for later diff-logging.
  Result<DbPage*> Get(uint32_t file_ref, uint64_t pageno, bool write_intent);
  /// Unpin without modification.
  void Release(DbPage* page);
  /// Unpin a modified page: marks dirty. (Logging is the TxnManager's job,
  /// via the snapshot.)
  void ReleaseDirty(DbPage* page);

  /// Pages currently in the file (grows via AllocPage).
  Result<uint64_t> FilePages(uint32_t file_ref);
  /// Redo hook: a log record proves `pageno` existed at crash time, so the
  /// registered page count (rebuilt from the possibly stale on-disk size)
  /// must cover it.
  void NoteRecoveredPage(uint32_t file_ref, uint64_t pageno) {
    if (pageno >= files_[file_ref].pages) {
      files_[file_ref].pages = pageno + 1;
    }
  }
  /// Extend the file by one zeroed page; returns its page number.
  Result<uint64_t> AllocPage(uint32_t file_ref);

  /// Write every dirty page back (checkpoint / shutdown path).
  Status FlushAll();
  /// Fsync every registered file: a checkpoint's page write-backs must
  /// reach the platter before the WAL below them is truncated or clamped
  /// by the low-water mark.
  Status FsyncAll();

  Kernel* kernel() const { return kernel_; }
  size_t file_count() const { return files_.size(); }
  const Stats& stats() const { return stats_; }
  const std::string& file_path(uint32_t file_ref) const;
  InodeNum file_inode(uint32_t file_ref) const;

 private:
  struct FileEntry {
    std::string path;
    InodeNum ino = kInvalidInode;
    uint64_t pages = 0;
  };
  struct Key {
    uint32_t file_ref;
    uint64_t pageno;
    bool operator<(const Key& o) const {
      return file_ref != o.file_ref ? file_ref < o.file_ref
                                    : pageno < o.pageno;
    }
  };

  Status WriteBackPage(DbPage* page);
  Status EvictOne();
  void TouchLru(DbPage* page);

  Kernel* kernel_;
  LogManager* log_;
  size_t capacity_;
  std::vector<FileEntry> files_;
  std::map<Key, std::unique_ptr<DbPage>> pages_;
  std::list<DbPage*> lru_;
  Stats stats_;
};

}  // namespace lfstx

#endif  // LFSTX_LIBTP_BUFFER_POOL_H_
