#include "libtp/txn_manager.h"

#include <algorithm>
#include <cstring>

namespace lfstx {

LibTp::LibTp(Kernel* kernel) : LibTp(kernel, Options{}) {}

LibTp::LibTp(Kernel* kernel, Options options)
    : kernel_(kernel),
      options_(options),
      log_(kernel, options.log),
      pool_(kernel, &log_, options.pool_pages),
      locks_(kernel->env(), "lock.libtp") {
  // Instance-prefixed so a machine co-hosting both architectures (fig5)
  // reports each manager separately instead of first-wins swallowing one.
  MetricsRegistry* m = kernel_->env()->metrics();
  m->AddGauge(this, "txn.libtp.begun", "count", "transactions started",
              [this] { return static_cast<double>(stats_.begun); });
  m->AddGauge(this, "txn.libtp.committed", "count", "transactions committed",
              [this] { return static_cast<double>(stats_.committed); });
  m->AddGauge(this, "txn.libtp.aborted", "count", "transactions aborted",
              [this] { return static_cast<double>(stats_.aborted); });
  m->AddGauge(this, "txn.libtp.deadlocks", "count",
              "aborts forced by deadlock",
              [this] { return static_cast<double>(stats_.deadlocks); });
  m->AddGauge(this, "txn.libtp.update_records", "count",
              "before/after-image log records written",
              [this] { return static_cast<double>(stats_.update_records); });
  m->AddGauge(this, "txn.libtp.active", "count",
              "transactions running right now",
              [this] { return static_cast<double>(active_); });
}

LibTp::~LibTp() { kernel_->env()->metrics()->DropOwner(this); }

Status LibTp::Open(const std::string& log_path) {
  return Open(log_path, /*run_recovery=*/true);
}

Status LibTp::Open(const std::string& log_path, bool run_recovery) {
  LFSTX_RETURN_IF_ERROR(log_.Open(log_path));
  return run_recovery ? Recover() : Status::OK();
}

Status LibTp::Close() {
  LFSTX_RETURN_IF_ERROR(Checkpoint());
  LFSTX_RETURN_IF_ERROR(pool_.CloseAll());
  return log_.Close();
}

// ------------------------------------------------------------ txn control --

Result<TxnId> LibTp::Begin() {
  kernel_->env()->Consume(kernel_->env()->costs().txn_bookkeeping_us);
  TxnId id = ids_.Next();
  txns_[id] = TxnState{TxnStatus::kRunning, kNullLsn, kNullLsn};
  active_++;
  stats_.begun++;
  kernel_->env()->profiler()->BeginSpan("libtp", id);
  LFSTX_TRACE(kernel_->env()->tracer(), TraceCat::kTxn, "txn_begin",
              {"txn", id}, {"active", active_});
  return id;
}

Status LibTp::Commit(TxnId txn) {
  SimEnv* env = kernel_->env();
  env->Consume(env->costs().txn_bookkeeping_us);
  // LFSTX_YIELD_OK(std::map nodes are stable and only this txn's own process erases its entry)
  auto it = txns_.find(txn);
  if (it == txns_.end() || it->second.status != TxnStatus::kRunning) {
    return Status::InvalidArgument("commit of unknown transaction");
  }
  it->second.status = TxnStatus::kCommitting;
  LogRecord rec;
  rec.type = LogRecType::kCommit;
  rec.txn = txn;
  rec.prev_lsn = it->second.last_lsn;
  env->LatchOp();  // log latch
  LFSTX_ASSIGN_OR_RETURN(Lsn lsn, log_.Append(rec));
  env->LatchOp();
  LFSTX_RETURN_IF_ERROR(log_.FlushTo(lsn, txn));
  env->LatchOp();  // lock-manager latch for the release pass
  locks_.UnlockAll(txn);
  env->LatchOp();
  it->second.status = TxnStatus::kCommitted;
  active_--;
  stats_.committed++;
  txns_.erase(it);
  env->profiler()->EndSpan("libtp", txn, true);
  LFSTX_TRACE(env->tracer(), TraceCat::kTxn, "txn_commit", {"txn", txn},
              {"commit_lsn", lsn}, {"active", active_});
  // Fuzzy checkpoints no longer need a quiescent point: any commit that
  // finds enough log accumulated takes one, live transactions and all.
  if (log_.next_lsn() - last_checkpoint_lsn_ >=
      options_.checkpoint_log_bytes) {
    LFSTX_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::OK();
}

Status LibTp::Abort(TxnId txn) {
  SimEnv* env = kernel_->env();
  env->Consume(env->costs().txn_bookkeeping_us);
  // LFSTX_YIELD_OK(std::map nodes are stable and only this txn's own process erases its entry)
  auto it = txns_.find(txn);
  if (it == txns_.end() || it->second.status != TxnStatus::kRunning) {
    return Status::InvalidArgument("abort of unknown transaction");
  }
  it->second.status = TxnStatus::kAborting;
  // Walk the transaction's record chain backwards applying before-images,
  // writing compensation records as we go.
  Lsn cursor = it->second.last_lsn;
  while (cursor != kNullLsn) {
    LFSTX_ASSIGN_OR_RETURN(LogRecord rec, log_.ReadRecord(cursor));
    if (rec.type == LogRecType::kUpdate) {
      LogRecord clr;
      clr.type = LogRecType::kClr;
      clr.txn = txn;
      clr.prev_lsn = it->second.last_lsn;
      clr.file_ref = rec.file_ref;
      clr.page = rec.page;
      clr.offset = rec.offset;
      clr.after = rec.before;  // redo-only undo
      env->LatchOp();
      LFSTX_ASSIGN_OR_RETURN(Lsn clr_lsn, log_.Append(clr));
      env->LatchOp();
      it->second.last_lsn = clr_lsn;
      LFSTX_RETURN_IF_ERROR(
          ApplyImage(rec.file_ref, rec.page, rec.offset, rec.before,
                     clr_lsn));
    }
    cursor = rec.prev_lsn;
  }
  LogRecord done;
  done.type = LogRecType::kAbort;
  done.txn = txn;
  done.prev_lsn = it->second.last_lsn;
  env->LatchOp();
  LFSTX_RETURN_IF_ERROR(log_.Append(done).status());
  env->LatchOp();
  env->LatchOp();
  locks_.UnlockAll(txn);
  env->LatchOp();
  it->second.status = TxnStatus::kAborted;
  active_--;
  stats_.aborted++;
  env->profiler()->EndSpan("libtp", txn, false);
  LFSTX_TRACE(env->tracer(), TraceCat::kTxn, "txn_abort", {"txn", txn},
              {"active", active_});
  return Status::OK();
}

// ------------------------------------------------------------ page access --

Result<DbPage*> LibTp::GetPage(TxnId txn, uint32_t file_ref, uint64_t pageno,
                               LockMode mode) {
  SimEnv* env = kernel_->env();
  env->LatchOp();  // lock-manager latch
  Status s = locks_.Lock(txn, LockId{file_ref, pageno}, mode);
  env->LatchOp();
  if (s.IsDeadlock()) stats_.deadlocks++;
  LFSTX_RETURN_IF_ERROR(s);
  return pool_.Get(file_ref, pageno, mode == LockMode::kExclusive);
}

void LibTp::PutPage(DbPage* page) { pool_.Release(page); }

Status LibTp::PutPageDirty(TxnId txn, DbPage* page) {
  SimEnv* env = kernel_->env();
  auto it = txns_.find(txn);
  if (it == txns_.end()) return Status::InvalidArgument("unknown txn");
  if (page->snapshot == nullptr) {
    return Status::Internal("dirty release without write intent");
  }
  // Diff the page against its pre-image; only the changed bytes are
  // logged ("only the updated bytes need be written", section 4.3). The
  // LSN field itself (first 8 bytes) is excluded. Slotted pages mutate at
  // both ends (slot directory up front, cells packed from the back), so
  // the [first-change, last-change) span is split at its largest unchanged
  // gap when that saves real log space.
  const char* before = page->snapshot->data();
  const char* after = page->data;
  uint32_t lo = sizeof(Lsn), hi = kBlockSize;
  while (lo < kBlockSize && before[lo] == after[lo]) lo++;
  while (hi > lo && before[hi - 1] == after[hi - 1]) hi--;
  if (lo < hi) {
    // Largest interior run of unchanged bytes.
    uint32_t best_start = hi, best_len = 0, run_start = 0, run_len = 0;
    for (uint32_t i = lo; i < hi; i++) {
      if (before[i] == after[i]) {
        if (run_len == 0) run_start = i;
        if (++run_len > best_len) {
          best_len = run_len;
          best_start = run_start;
        }
      } else {
        run_len = 0;
      }
    }
    struct Range {
      uint32_t lo, hi;
    } ranges[2];
    int nranges = 1;
    constexpr uint32_t kMinGap = 128;  // below this, one record is cheaper
    if (best_len >= kMinGap) {
      ranges[0] = {lo, best_start};
      ranges[1] = {best_start + best_len, hi};
      nranges = 2;
    } else {
      ranges[0] = {lo, hi};
    }
    for (int r = 0; r < nranges; r++) {
      LogRecord rec;
      rec.type = LogRecType::kUpdate;
      rec.txn = txn;
      rec.prev_lsn = it->second.last_lsn;
      rec.file_ref = page->file_ref;
      rec.page = page->pageno;
      rec.offset = ranges[r].lo;
      rec.before.assign(before + ranges[r].lo, ranges[r].hi - ranges[r].lo);
      rec.after.assign(after + ranges[r].lo, ranges[r].hi - ranges[r].lo);
      env->LatchOp();
      // Claim first_lsn *before* the append (no yield between here and
      // the record entering the log tail): a fuzzy checkpoint that runs
      // while Append is parked in its CPU charge must already see this
      // transaction in the low-water-mark min, or redo could start past
      // an update whose page flush the checkpoint missed.
      if (it->second.first_lsn == kNullLsn) {
        it->second.first_lsn = log_.next_lsn();
      }
      LFSTX_ASSIGN_OR_RETURN(Lsn lsn, log_.Append(rec));
      env->LatchOp();
      it->second.last_lsn = lsn;
      page->set_lsn(lsn + 1);  // stored LSN is rec+1 so 0 means "never"
      stats_.update_records++;
    }
    // Refresh the snapshot for subsequent updates under the same pin.
    page->snapshot->assign(page->data, kBlockSize);
  }
  pool_.ReleaseDirty(page);
  return Status::OK();
}

void LibTp::UnlockPage(TxnId txn, uint32_t file_ref, uint64_t pageno) {
  SimEnv* env = kernel_->env();
  env->LatchOp();
  locks_.Unlock(txn, LockId{file_ref, pageno});
  env->LatchOp();
}

Status LibTp::ApplyImage(uint32_t file_ref, uint64_t pageno, uint32_t offset,
                         const std::string& image, Lsn stamp_lsn) {
  LFSTX_ASSIGN_OR_RETURN(DbPage * page, pool_.Get(file_ref, pageno, false));
  memcpy(page->data + offset, image.data(), image.size());
  page->set_lsn(stamp_lsn + 1);
  pool_.ReleaseDirty(page);
  return Status::OK();
}

Status LibTp::Checkpoint() {
  // LSN fence and low-water mark, taken *before* the pool flush: records
  // appended while FlushAll yields are all >= cp_begin, and every live
  // transaction's first record is in the min, so redo from the low-water
  // mark cannot skip an update whose page write the flush missed.
  Lsn cp_begin = log_.next_lsn();
  Lsn lwm = cp_begin;
  for (const auto& [id, st] : txns_) {
    if (st.first_lsn != kNullLsn) lwm = std::min(lwm, st.first_lsn);
  }
  LFSTX_RETURN_IF_ERROR(pool_.FlushAll());
  // The write-backs above land in the kernel buffer cache; force them to
  // the platter before giving up any log — otherwise a crash after the
  // truncate (or low-water-mark advance) loses committed page state with
  // no records left to redo it.
  LFSTX_RETURN_IF_ERROR(pool_.FsyncAll());
  if (active_ == 0) {
    // Every update is reflected in a durable page and nothing is in
    // flight: the old log is dead weight — reclaim it.
    LFSTX_RETURN_IF_ERROR(log_.Truncate());
  } else {
    // Fuzzy checkpoint: transactions stay live. The checkpoint record
    // marks the flush; the persisted low-water mark bounds replay.
    LogRecord rec;
    rec.type = LogRecType::kCheckpoint;
    LFSTX_ASSIGN_OR_RETURN(Lsn lsn, log_.Append(rec));
    LFSTX_RETURN_IF_ERROR(log_.FlushTo(lsn));
    LFSTX_RETURN_IF_ERROR(log_.SetCheckpointLwm(lsn, lwm));
  }
  last_checkpoint_lsn_ = log_.next_lsn();
  return Status::OK();
}

}  // namespace lfstx
