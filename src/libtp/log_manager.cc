#include "libtp/log_manager.h"

#include <algorithm>
#include <cstring>

namespace lfstx {

namespace {
// 32-byte header at the front of the log file: LSNs and epochs survive
// in-place truncation of the preallocated region. checkpoint_lsn /
// low_water_lsn bound recovery's scan; files written before the fields
// existed carry zeros there, which recovery clamps to the base — full
// scan, same answer.
struct LogFileHeader {
  uint32_t magic;
  uint32_t epoch;
  uint64_t base_lsn;
  uint64_t checkpoint_lsn;  ///< LSN of the last checkpoint record
  uint64_t low_water_lsn;   ///< replay may start here (see SetCheckpointLwm)
};
static_assert(sizeof(LogFileHeader) == 32);
constexpr uint32_t kLogFileMagic = 0x4C474844;  // "LGHD"
}  // namespace

LogManager::LogManager(Kernel* kernel) : LogManager(kernel, Options{}) {}

LogManager::LogManager(Kernel* kernel, Options options)
    : kernel_(kernel), options_(options), flushed_(kernel->env()) {
  MetricsRegistry* m = kernel_->env()->metrics();
  blame_hist_ = m->GetHistogram(
      "blame.log.leader_us", "us",
      "commit log-flush wait absorbed by another commit's fsync");
  m->AddGauge(this, "log.records", "count", "WAL records appended",
              [this] { return static_cast<double>(stats_.records); });
  m->AddGauge(this, "log.flushes", "count", "fsync batches",
              [this] { return static_cast<double>(stats_.flushes); });
  m->AddGauge(this, "log.bytes_appended", "bytes", "WAL bytes appended",
              [this] { return static_cast<double>(stats_.bytes_appended); });
  m->AddGauge(this, "log.group_commit_waits", "count",
              "commits that waited for a shared fsync",
              [this] { return static_cast<double>(stats_.group_commit_waits); });
  m->AddGauge(this, "log.retained_bytes", "bytes",
              "log bytes not yet truncated",
              [this] { return static_cast<double>(next_lsn_ - base_lsn_); });
}

LogManager::~LogManager() { kernel_->env()->metrics()->DropOwner(this); }

Status LogManager::Open(const std::string& path) {
  auto r = kernel_->Open(path);
  if (r.ok()) {
    log_ino_ = r.value();
    // Provenance annotation only (no simulated syscall): WAL blocks are
    // charged to logecon.bytes.wal, not user data.
    kernel_->fs()->MarkWalFile(log_ino_);
    LogFileHeader h;
    auto n = kernel_->Read(log_ino_, 0, sizeof(h),
                           reinterpret_cast<char*>(&h));
    LFSTX_RETURN_IF_ERROR(n.status());
    if (n.value() != sizeof(h) || h.magic != kLogFileMagic) {
      return Status::Corruption("bad log file header");
    }
    base_lsn_ = h.base_lsn;
    epoch_ = h.epoch;
    checkpoint_lsn_ = h.checkpoint_lsn;
    low_water_lsn_ = h.low_water_lsn;
    // The file is preallocated, so its size says nothing about the tail:
    // scan forward from the base until the records stop making sense.
    Lsn lsn = base_lsn_;
    char buf[2 * kBlockSize + 256];
    for (;;) {
      uint64_t file_off = sizeof(LogFileHeader) + (lsn - base_lsn_);
      auto nr = kernel_->Read(log_ino_, file_off, sizeof(buf), buf);
      LFSTX_RETURN_IF_ERROR(nr.status());
      size_t consumed = 0;
      auto rec = LogRecord::Decode(buf, nr.value(), &consumed);
      if (!rec.ok() || rec.value().epoch != epoch_) break;
      lsn += consumed;
    }
    next_lsn_ = durable_lsn_ = tail_base_ = lsn;
    return Status::OK();
  }
  if (!r.status().IsNotFound()) return r.status();
  LFSTX_ASSIGN_OR_RETURN(log_ino_, kernel_->Create(path));
  kernel_->fs()->MarkWalFile(log_ino_);  // tag before the header/prealloc writes
  LogFileHeader h{};
  h.magic = kLogFileMagic;
  h.base_lsn = 0;
  h.epoch = 0;
  LFSTX_RETURN_IF_ERROR(kernel_->Write(
      log_ino_, 0, Slice(reinterpret_cast<const char*>(&h), sizeof(h))));
  if (options_.preallocate_bytes > 0) {
    // Reserve a contiguous region up front ("keep the log on its own
    // preallocated area"): appends then never grow the file, so the fsync
    // path writes only the data blocks.
    std::string zeros(64 * 1024, '\0');
    for (uint64_t off = sizeof(h); off < options_.preallocate_bytes;
         off += zeros.size()) {
      LFSTX_RETURN_IF_ERROR(kernel_->Write(log_ino_, off, zeros));
    }
  }
  LFSTX_RETURN_IF_ERROR(kernel_->Fsync(log_ino_));
  base_lsn_ = next_lsn_ = durable_lsn_ = tail_base_ = 0;
  checkpoint_lsn_ = low_water_lsn_ = 0;
  epoch_ = 0;
  return Status::OK();
}

Status LogManager::Truncate() {
  if (!tail_.empty()) {
    LFSTX_RETURN_IF_ERROR(FlushTo(next_lsn_ - 1));
  }
  base_lsn_ = next_lsn_;
  tail_base_ = next_lsn_;
  checkpoint_lsn_ = next_lsn_;
  low_water_lsn_ = next_lsn_;
  epoch_++;
  LFSTX_TRACE(kernel_->env()->tracer(), TraceCat::kLog, "log_truncate",
              {"base_lsn", base_lsn_}, {"epoch", epoch_});
  if (options_.preallocate_bytes == 0) {
    // No reserved region: physically release the old records.
    LFSTX_RETURN_IF_ERROR(kernel_->Truncate(log_ino_, sizeof(LogFileHeader)));
  }
  // Otherwise the region is reused in place; the bumped epoch makes any
  // stale record bytes beyond the new tail unreplayable.
  return WriteHeader();
}

Status LogManager::WriteHeader() {
  LogFileHeader h{};
  h.magic = kLogFileMagic;
  h.base_lsn = base_lsn_;
  h.epoch = epoch_;
  h.checkpoint_lsn = checkpoint_lsn_;
  h.low_water_lsn = low_water_lsn_;
  LFSTX_RETURN_IF_ERROR(kernel_->Write(
      log_ino_, 0, Slice(reinterpret_cast<const char*>(&h), sizeof(h))));
  return kernel_->Fsync(log_ino_);
}

Status LogManager::SetCheckpointLwm(Lsn checkpoint_lsn, Lsn low_water) {
  checkpoint_lsn_ = checkpoint_lsn;
  low_water_lsn_ = std::max(low_water, base_lsn_);
  LFSTX_TRACE(kernel_->env()->tracer(), TraceCat::kLog, "log_lwm",
              {"checkpoint_lsn", checkpoint_lsn_},
              {"low_water_lsn", low_water_lsn_});
  return WriteHeader();
}

Status LogManager::Close() {
  if (log_ino_ == kInvalidInode) return Status::OK();
  LFSTX_RETURN_IF_ERROR(FlushTo(next_lsn_ == 0 ? 0 : next_lsn_ - 1));
  Status s = kernel_->Close(log_ino_);
  log_ino_ = kInvalidInode;
  return s;
}

Result<Lsn> LogManager::Append(const LogRecord& rec) {
  Lsn lsn = next_lsn_;
  LogRecord stamped = rec;
  stamped.epoch = epoch_;
  stamped.AppendTo(&tail_);
  next_lsn_ = tail_base_ + tail_.size();
  stats_.records++;
  stats_.bytes_appended += stamped.EncodedSize();
  kernel_->env()->Consume(kernel_->env()->costs().log_record_us);
  return lsn;
}

Status LogManager::FlushTo(Lsn lsn, TxnId txn) {
  SimEnv* env = kernel_->env();
  if (next_lsn_ == 0) return Status::OK();  // nothing ever appended
  // Everything until the WAL is durable — group-commit hold, the log
  // write + fsync (disk I/O included, see Profiler::Effective), or
  // piggybacking on another commit's flush — is log-flush wait.
  ProfPhaseScope prof_phase(env->profiler(), Phase::kLogWait);
  lsn = std::min(lsn, next_lsn_ - 1);
  while (durable_lsn_ < lsn + 1) {
    if (flusher_active_) {
      // Piggyback on the in-flight flush; one wait_edge per sleep blames
      // the transaction leading it (kNoTxn leaders — checkpoint or buffer
      // pool flushes — emit no edge; that wait stays span self-time).
      TxnId leader = flusher_txn_;  // LFSTX_YIELD_OK(captures who to blame for the sleep we are about to take)
      SimTime since = env->Now();
      uint64_t log_us0 = env->profiler()->PhaseTotal(Phase::kLogWait);
      pending_commits_++;
      WakeReason r = flushed_.Sleep();
      pending_commits_--;
      uint64_t edge_us =
          env->profiler()->PhaseTotal(Phase::kLogWait) - log_us0;
      if (edge_us > 0 && leader != kNoTxn && leader != txn) {
        blame_hist_->Add(edge_us);
        LFSTX_TRACE(env->tracer(), TraceCat::kBlame, "wait_edge",
                    {"kind", "log"}, {"src", "leader"}, {"waiter", txn},
                    {"holder", leader}, {"since", since},
                    {"waited_us", edge_us});
      }
      if (r == WakeReason::kStopped) {
        return Status::Busy("simulation stopped during log flush");
      }
      continue;
    }
    flusher_active_ = true;
    flusher_txn_ = txn;
    if (options_.group_commit_wait > 0) {
      // Hold the flush briefly so concurrent commits share the fsync.
      stats_.group_commit_waits++;
      SimTime deadline = env->Now() + options_.group_commit_wait;
      while (env->Now() < deadline &&
             pending_commits_ + 1 < options_.group_commit_batch &&
             !env->stop_requested()) {
        env->SleepUntil(deadline);
      }
    }
    std::string batch;
    batch.swap(tail_);
    Lsn base = tail_base_;
    tail_base_ += batch.size();
    Status s = Status::OK();
    if (!batch.empty()) {
      uint64_t file_off = sizeof(LogFileHeader) + (base - base_lsn_);
      s = kernel_->Write(log_ino_, file_off, batch);
      if (s.ok()) s = kernel_->Fsync(log_ino_);
      stats_.flushes++;
      LFSTX_TRACE(env->tracer(), TraceCat::kLog, "log_flush",
                  {"bytes", static_cast<uint64_t>(batch.size())},
                  {"base_lsn", base},
                  {"piggybacked", pending_commits_}, {"ok", s.ok()});
    }
    if (s.ok()) durable_lsn_ = tail_base_;
    flusher_active_ = false;
    flushed_.WakeAll();
    LFSTX_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Result<LogRecord> LogManager::ReadRecord(Lsn lsn) {
  size_t consumed = 0;
  if (lsn >= tail_base_) {
    size_t off = lsn - tail_base_;
    if (off >= tail_.size()) return Status::InvalidArgument("LSN beyond log");
    return LogRecord::Decode(tail_.data() + off, tail_.size() - off,
                             &consumed);
  }
  if (lsn < base_lsn_) {
    return Status::InvalidArgument("LSN precedes the truncation point");
  }
  // Records are bounded by two page images plus the header.
  char buf[2 * kBlockSize + 256];
  uint64_t file_off = sizeof(LogFileHeader) + (lsn - base_lsn_);
  auto n = kernel_->Read(log_ino_, file_off, sizeof(buf), buf);
  LFSTX_RETURN_IF_ERROR(n.status());
  auto rec = LogRecord::Decode(buf, n.value(), &consumed);
  if (rec.ok() && rec.value().epoch != epoch_) {
    return Status::Corruption("log record from a previous epoch");
  }
  return rec;
}

Status LogManager::ScanAll(
    const std::function<Status(Lsn, const LogRecord&)>& fn) {
  return ScanFrom(base_lsn_, fn);
}

Status LogManager::ScanFrom(
    Lsn from, const std::function<Status(Lsn, const LogRecord&)>& fn) {
  Lsn lsn = std::max(from, base_lsn_);
  Lsn end = tail_base_ + tail_.size();
  while (lsn < end) {
    auto r = ReadRecord(lsn);
    if (!r.ok()) {
      if (r.status().IsCorruption()) break;  // torn tail: normal end
      return r.status();
    }
    LFSTX_RETURN_IF_ERROR(fn(lsn, r.value()));
    lsn += r.value().EncodedSize();
  }
  return Status::OK();
}

}  // namespace lfstx
