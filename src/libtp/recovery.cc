// LIBTP restart recovery: one forward redo pass (applying every update /
// CLR whose effect is missing from the page, judged by the page LSN), then
// a backward undo pass for transactions with no commit or abort record.
#include <algorithm>
#include <map>
#include <set>

#include "common/metrics.h"
#include "libtp/txn_manager.h"

namespace lfstx {

Status LibTp::Recover() {
  struct TxnInfo {
    Lsn last_lsn = kNullLsn;
    bool finished = false;  // saw commit or abort
  };
  std::map<TxnId, TxnInfo> seen;

  // Redo starts at the persisted low-water mark: every page update below
  // it was flushed by the checkpoint that wrote it, and no loser's chain
  // begins before it (the mark mins over live transactions' first LSNs).
  // Undo still follows prev_lsn chains through ReadRecord, which serves
  // any retained byte, so clamping only the *scan* is safe.
  Lsn start = std::max(log_.base_lsn(), log_.low_water_lsn());
  uint64_t scanned = 0;
  uint64_t redo_applied = 0;

  // ---- pass 1: redo (and analysis) ----
  Status scan = log_.ScanFrom(
      start, [&](Lsn lsn, const LogRecord& rec) -> Status {
    scanned++;
    switch (rec.type) {
      case LogRecType::kUpdate:
      case LogRecType::kClr: {
        seen[rec.txn].last_lsn = lsn;
        if (rec.file_ref >= pool_.file_count()) {
          return Status::Corruption(
              "log references a database file that was not re-registered "
              "before recovery (RegisterFile order must match)");
        }
        // The record proves this page existed; the on-disk file may be
        // shorter (extensions reach it only at write-back).
        pool_.NoteRecoveredPage(rec.file_ref, rec.page);
        LFSTX_ASSIGN_OR_RETURN(DbPage * page,
                               pool_.Get(rec.file_ref, rec.page, false));
        const std::string& image = rec.after;
        if (page->lsn() <= lsn) {  // stored LSN = applied-record + 1
          memcpy(page->data + rec.offset, image.data(), image.size());
          page->set_lsn(lsn + 1);
          redo_applied++;
          pool_.ReleaseDirty(page);
        } else {
          pool_.Release(page);
        }
        break;
      }
      case LogRecType::kCommit:
      case LogRecType::kAbort:
        seen[rec.txn].finished = true;
        break;
      case LogRecType::kCheckpoint:
        break;
    }
    return Status::OK();
  });
  LFSTX_RETURN_IF_ERROR(scan);

  // ---- pass 2: undo losers ----
  uint64_t losers = 0;
  for (auto& [txn, info] : seen) {
    if (info.finished) continue;
    losers++;
    Lsn cursor = info.last_lsn;
    Lsn chain = info.last_lsn;
    while (cursor != kNullLsn) {
      LFSTX_ASSIGN_OR_RETURN(LogRecord rec, log_.ReadRecord(cursor));
      if (rec.type == LogRecType::kUpdate) {
        LogRecord clr;
        clr.type = LogRecType::kClr;
        clr.txn = txn;
        clr.prev_lsn = chain;
        clr.file_ref = rec.file_ref;
        clr.page = rec.page;
        clr.offset = rec.offset;
        clr.after = rec.before;
        LFSTX_ASSIGN_OR_RETURN(Lsn clr_lsn, log_.Append(clr));
        chain = clr_lsn;
        LFSTX_RETURN_IF_ERROR(ApplyImage(rec.file_ref, rec.page, rec.offset,
                                         rec.before, clr_lsn));
      }
      cursor = rec.prev_lsn;
    }
    LogRecord done;
    done.type = LogRecType::kAbort;
    done.txn = txn;
    done.prev_lsn = chain;
    LFSTX_RETURN_IF_ERROR(log_.Append(done).status());
  }

  MetricsRegistry* m = kernel_->env()->metrics();
  m->GetCounter("recovery.libtp.scanned", "count",
                "log records scanned during redo")
      ->Set(scanned);
  m->GetCounter("recovery.libtp.redo_applied", "count",
                "updates re-applied (page LSN behind record)")
      ->Set(redo_applied);
  m->GetCounter("recovery.libtp.losers", "count",
                "unfinished transactions rolled back")
      ->Set(losers);
  m->GetCounter("recovery.libtp.skipped_bytes", "bytes",
                "retained log below the low-water mark, not scanned")
      ->Set(start - log_.base_lsn());

  // Durably finish: flush pages, then note the clean point in the log.
  return Checkpoint();
}

}  // namespace lfstx
