#include "libtp/log_record.h"

#include <cstring>

#include "common/crc32c.h"

namespace lfstx {

namespace {
struct RawLogHeader {
  uint32_t magic;
  uint32_t type;
  uint64_t txn;
  uint64_t prev_lsn;
  uint32_t file_ref;
  uint32_t epoch;
  uint64_t page;
  uint32_t offset;
  uint32_t before_len;
  uint32_t after_len;
  uint32_t crc;  // of header (crc=0) + payloads
};
static_assert(sizeof(RawLogHeader) == 56);
constexpr uint32_t kLogMagic = 0x4C4F4731;  // "LOG1"
}  // namespace

size_t LogRecord::EncodedSize() const {
  return sizeof(RawLogHeader) + before.size() + after.size();
}

void LogRecord::AppendTo(std::string* out) const {
  RawLogHeader h{};
  h.magic = kLogMagic;
  h.type = static_cast<uint32_t>(type);
  h.txn = txn;
  h.prev_lsn = prev_lsn;
  h.file_ref = file_ref;
  h.page = page;
  h.offset = offset;
  h.before_len = static_cast<uint32_t>(before.size());
  h.after_len = static_cast<uint32_t>(after.size());
  h.epoch = epoch;
  h.crc = 0;
  uint32_t crc = crc32c::Value(reinterpret_cast<const char*>(&h), sizeof(h));
  crc = crc32c::Extend(crc, before.data(), before.size());
  crc = crc32c::Extend(crc, after.data(), after.size());
  h.crc = crc32c::Mask(crc);
  out->append(reinterpret_cast<const char*>(&h), sizeof(h));
  out->append(before);
  out->append(after);
}

Result<LogRecord> LogRecord::Decode(const char* data, size_t available,
                                    size_t* consumed) {
  if (available < sizeof(RawLogHeader)) {
    return Status::Corruption("log truncated in record header");
  }
  RawLogHeader h;
  memcpy(&h, data, sizeof(h));
  if (h.magic != kLogMagic) return Status::Corruption("bad log record magic");
  size_t total = sizeof(h) + h.before_len + h.after_len;
  if (total > available) {
    return Status::Corruption("log truncated in record payload");
  }
  RawLogHeader zeroed = h;
  zeroed.crc = 0;
  uint32_t crc = crc32c::Value(reinterpret_cast<const char*>(&zeroed),
                               sizeof(zeroed));
  crc = crc32c::Extend(crc, data + sizeof(h), h.before_len + h.after_len);
  if (crc32c::Mask(crc) != h.crc) {
    return Status::Corruption("log record CRC mismatch (torn write)");
  }
  LogRecord r;
  r.type = static_cast<LogRecType>(h.type);
  r.txn = h.txn;
  r.prev_lsn = h.prev_lsn;
  r.file_ref = h.file_ref;
  r.page = h.page;
  r.offset = h.offset;
  r.epoch = h.epoch;
  r.before.assign(data + sizeof(h), h.before_len);
  r.after.assign(data + sizeof(h) + h.before_len, h.after_len);
  *consumed = total;
  return r;
}

}  // namespace lfstx
