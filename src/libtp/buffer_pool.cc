#include "libtp/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/check_macros.h"

namespace lfstx {

Lsn DbPage::lsn() const {
  Lsn v;
  memcpy(&v, data, sizeof(v));
  return v;
}

void DbPage::set_lsn(Lsn v) { memcpy(data, &v, sizeof(v)); }

BufferPool::BufferPool(Kernel* kernel, LogManager* log, size_t capacity_pages)
    : kernel_(kernel), log_(log), capacity_(capacity_pages) {
  assert(capacity_ >= 8);
  MetricsRegistry* m = kernel_->env()->metrics();
  m->AddGauge(this, "pool.hits", "count", "user buffer pool hits",
              [this] { return static_cast<double>(stats_.hits); });
  m->AddGauge(this, "pool.misses", "count", "user buffer pool misses",
              [this] { return static_cast<double>(stats_.misses); });
  m->AddGauge(this, "pool.evictions", "count", "pages evicted",
              [this] { return static_cast<double>(stats_.evictions); });
  m->AddGauge(this, "pool.dirty_writebacks", "count",
              "dirty pages written back (steal + WAL rule)",
              [this] { return static_cast<double>(stats_.dirty_writebacks); });
  m->AddGauge(this, "pool.resident", "pages", "pages currently pooled",
              [this] { return static_cast<double>(pages_.size()); });
}

BufferPool::~BufferPool() { kernel_->env()->metrics()->DropOwner(this); }

Result<uint32_t> BufferPool::RegisterFile(const std::string& path,
                                          bool create) {
  // One ref per path: a crash-recovery boot registers the files (in
  // creation order) before running redo, and the Db::Open that follows
  // must adopt that same ref — with its recovered page count — rather
  // than shadow it with a fresh entry sized from the stale on-disk file.
  for (size_t i = 0; i < files_.size(); i++) {
    if (files_[i].path == path) return static_cast<uint32_t>(i);
  }
  FileEntry e;
  e.path = path;
  auto r = kernel_->Open(path);
  if (r.ok()) {
    e.ino = r.value();
  } else if (r.status().IsNotFound() && create) {
    LFSTX_ASSIGN_OR_RETURN(e.ino, kernel_->Create(path));
    // Durable creation (the classic create-then-fsync discipline): WAL
    // redo can only restore page contents into a file that still exists
    // after reboot, so the file's metadata must never lag the first log
    // record that references it.
    LFSTX_RETURN_IF_ERROR(kernel_->Fsync(e.ino));
  } else {
    return r.status();
  }
  FileStat st;
  LFSTX_RETURN_IF_ERROR(kernel_->fs()->StatInode(e.ino, &st));
  e.pages = (st.size + kBlockSize - 1) / kBlockSize;
  files_.push_back(e);
  return static_cast<uint32_t>(files_.size() - 1);
}

Status BufferPool::CloseAll() {
  LFSTX_RETURN_IF_ERROR(FlushAll());
  for (auto& f : files_) {
    if (f.ino != kInvalidInode) {
      LFSTX_RETURN_IF_ERROR(kernel_->Close(f.ino));
      f.ino = kInvalidInode;
    }
  }
  pages_.clear();
  lru_.clear();
  return Status::OK();
}

const std::string& BufferPool::file_path(uint32_t file_ref) const {
  return files_[file_ref].path;
}

InodeNum BufferPool::file_inode(uint32_t file_ref) const {
  return files_[file_ref].ino;
}

void BufferPool::TouchLru(DbPage* page) {
  if (page->in_lru) lru_.erase(page->lru_pos);
  lru_.push_back(page);
  page->lru_pos = std::prev(lru_.end());
  page->in_lru = true;
}

Status BufferPool::WriteBackPage(DbPage* page) {
  // WAL rule: the log must cover the page's last update first.
  if (page->lsn() != 0) {
    LFSTX_RETURN_IF_ERROR(log_->FlushTo(page->lsn()));
  }
  LFSTX_RETURN_IF_ERROR(
      kernel_->Write(files_[page->file_ref].ino,
                     page->pageno * kBlockSize,
                     Slice(page->data, kBlockSize)));
  page->dirty = false;
  stats_.dirty_writebacks++;
  return Status::OK();
}

Status BufferPool::EvictOne() {
  // Every post-write-back path returns without advancing the loop
  // iterator, and the victim is pinned across the only yield, so no
  // live iterator survives a pool mutation.
  for (DbPage* victim : lru_) {  // LFSTX_YIELD_OK(no iterator use after the yield: all paths return)
    if (victim->pins > 0) continue;
    if (victim->dirty) {
      // Pin across the write-back: it yields on log and disk I/O, and a
      // concurrent EvictOne picking the same victim would double-erase it.
      victim->pins++;
      Status s = WriteBackPage(victim);
      victim->pins--;
      LFSTX_RETURN_IF_ERROR(s);
      if (victim->pins > 0 || victim->dirty) {
        // Re-pinned or re-dirtied while the write-back yielded; report
        // success and let the caller's capacity loop pick a new victim.
        return Status::OK();
      }
    }
    stats_.evictions++;
    lru_.erase(victim->lru_pos);
    pages_.erase(Key{victim->file_ref, victim->pageno});
    return Status::OK();
  }
  return Status::NoSpace("user buffer pool exhausted: all pages pinned");
}

Result<DbPage*> BufferPool::Get(uint32_t file_ref, uint64_t pageno,
                                bool write_intent) {
  SimEnv* env = kernel_->env();
  env->LatchOp();  // acquire the shared-memory pool latch
  DbPage* page = nullptr;
  auto it = pages_.find(Key{file_ref, pageno});
  if (it != pages_.end()) {
    page = it->second.get();
    stats_.hits++;
  } else {
    stats_.misses++;
    while (pages_.size() >= capacity_) {
      Status s = EvictOne();
      if (!s.ok()) {
        env->LatchOp();
        return s;
      }
    }
    auto owned = std::make_unique<DbPage>();
    page = owned.get();
    page->file_ref = file_ref;
    page->pageno = pageno;
    memset(page->data, 0, sizeof(page->data));
    if (pageno < files_[file_ref].pages) {
      auto n = kernel_->Read(files_[file_ref].ino, pageno * kBlockSize,
                             kBlockSize, page->data);
      if (!n.ok()) {
        env->LatchOp();
        return n.status();
      }
    }
    pages_[Key{file_ref, pageno}] = std::move(owned);
  }
  page->pins++;
  TouchLru(page);
  if (write_intent && page->snapshot == nullptr) {
    page->snapshot =
        std::make_unique<std::string>(page->data, kBlockSize);
  }
  env->LatchOp();  // release the latch
  return page;
}

void BufferPool::Release(DbPage* page) {
  SimEnv* env = kernel_->env();
  env->LatchOp();
  LFSTX_CHECK(page->pins > 0,
              "Release without a matching GetPage (pin underflow)");
  page->pins--;
  if (page->pins == 0 && !page->dirty) page->snapshot.reset();
  env->LatchOp();
}

void BufferPool::ReleaseDirty(DbPage* page) {
  SimEnv* env = kernel_->env();
  env->LatchOp();
  LFSTX_CHECK(page->pins > 0,
              "ReleaseDirty without a matching GetPage (pin underflow)");
  page->pins--;
  page->dirty = true;
  env->LatchOp();
}

Result<uint64_t> BufferPool::FilePages(uint32_t file_ref) {
  return files_[file_ref].pages;
}

Result<uint64_t> BufferPool::AllocPage(uint32_t file_ref) {
  // LFSTX_YIELD_OK(the increment below reserves this page number before any yield)
  uint64_t pageno = files_[file_ref].pages;
  files_[file_ref].pages++;
  // Materialize the page in the pool; it reaches the file at write-back.
  LFSTX_ASSIGN_OR_RETURN(DbPage * page, Get(file_ref, pageno, false));
  memset(page->data, 0, kBlockSize);
  ReleaseDirty(page);
  return pageno;
}

Status BufferPool::FlushAll() {
  // Snapshot the dirty keys first: write-back yields, and a concurrent
  // Get -> EvictOne can erase pool entries — including the one a live
  // map iterator points at — while this process is parked.
  std::vector<Key> dirty;
  for (auto& [key, page] : pages_) {
    if (page->dirty) dirty.push_back(key);
  }
  for (const Key& key : dirty) {
    auto it = pages_.find(key);
    if (it == pages_.end() || !it->second->dirty) continue;
    LFSTX_RETURN_IF_ERROR(WriteBackPage(it->second.get()));
  }
  return Status::OK();
}

Status BufferPool::FsyncAll() {
  for (const auto& f : files_) {
    if (f.ino != kInvalidInode) {
      LFSTX_RETURN_IF_ERROR(kernel_->Fsync(f.ino));
    }
  }
  return Status::OK();
}

}  // namespace lfstx
