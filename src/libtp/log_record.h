// Write-ahead log record format for the user-level transaction system
// (paper section 3: "before-image and after-image logging to support both
// redo and undo recovery").
//
// Update records carry the byte range of a page that changed plus its
// before and after images — "logging schemes where only the updated bytes
// need be written" (section 4.3), the contrast to the embedded manager's
// whole-page force.
#ifndef LFSTX_LIBTP_LOG_RECORD_H_
#define LFSTX_LIBTP_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "fs/fs_types.h"

namespace lfstx {

/// Log sequence number: byte offset of a record in the log file.
using Lsn = uint64_t;
constexpr Lsn kNullLsn = ~0ull;

enum class LogRecType : uint32_t {
  kUpdate = 1,
  kCommit = 2,
  kAbort = 3,
  kCheckpoint = 4,
  /// Compensation: undo of an update during abort (so crash-during-abort
  /// recovery is idempotent).
  kClr = 5,
};

/// \brief One WAL record.
struct LogRecord {
  LogRecType type = LogRecType::kUpdate;
  TxnId txn = kNoTxn;
  Lsn prev_lsn = kNullLsn;  ///< previous record of the same transaction
  /// Truncation epoch: the log file is preallocated and reused in place,
  /// so records from an earlier epoch surviving beyond the current tail
  /// must not be replayed.
  uint32_t epoch = 0;

  // kUpdate / kClr payload:
  uint32_t file_ref = 0;  ///< registered database file
  uint64_t page = 0;
  uint32_t offset = 0;    ///< byte range within the page
  std::string before;
  std::string after;

  /// Serialized byte size (for LSN arithmetic before appending).
  size_t EncodedSize() const;
  void AppendTo(std::string* out) const;

  /// Decode the record at `data`; sets *consumed to its size. Returns
  /// kCorruption at a torn/invalid record (end of log).
  static Result<LogRecord> Decode(const char* data, size_t available,
                                  size_t* consumed);
};

}  // namespace lfstx

#endif  // LFSTX_LIBTP_LOG_RECORD_H_
