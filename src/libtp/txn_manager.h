// LIBTP: the user-level transaction system of paper section 3 — WAL +
// two-phase locking, a user-level buffer pool, and subroutine-interface
// transaction begin/commit/abort. Runs identically on either file system;
// Figure 4's left and middle bars are this manager on FFS and LFS.
#ifndef LFSTX_LIBTP_TXN_MANAGER_H_
#define LFSTX_LIBTP_TXN_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "libtp/buffer_pool.h"
#include "libtp/log_manager.h"
#include "txn/lock_manager.h"
#include "txn/txn_id.h"

namespace lfstx {

/// \brief The LIBTP library instance.
class LibTp {
 public:
  struct Options {
    size_t pool_pages = 2048;  ///< user buffer pool (8 MB default)
    LogManager::Options log;
    /// Automatic checkpoint (flush pool + truncate log) once this much
    /// log has accumulated, taken at the next commit with no other
    /// transaction active.
    uint64_t checkpoint_log_bytes = 4 * 1024 * 1024;
  };

  struct Stats {
    uint64_t begun = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t deadlocks = 0;
    uint64_t update_records = 0;
  };

  explicit LibTp(Kernel* kernel);
  LibTp(Kernel* kernel, Options options);
  ~LibTp();

  /// Open the log (creating it if needed) and run restart recovery.
  Status Open(const std::string& log_path);
  /// Open with recovery deferred: crash-test rigs open the log first,
  /// re-register the database files in creation order (via
  /// pool()->RegisterFile — the redo pass resolves file_refs positionally
  /// against the registry and rebuilds each file's page count), call
  /// Recover(), and only then Db::Open the relations.
  Status Open(const std::string& log_path, bool run_recovery);
  Status Close();

  // -- transaction interface (the section 3 subroutine interface) --
  Result<TxnId> Begin();
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);

  // -- page access for the db layer --
  /// Lock (two-phase) then pin a page. Shared-memory latch costs apply to
  /// both the lock manager and pool (section 5.1's semaphore syscalls).
  Result<DbPage*> GetPage(TxnId txn, uint32_t file_ref, uint64_t pageno,
                          LockMode mode);
  /// Unpin an unmodified page.
  void PutPage(DbPage* page);
  /// Unpin a modified page: diffs against its snapshot, appends a
  /// before/after-image log record, stamps the page LSN, marks it dirty.
  Status PutPageDirty(TxnId txn, DbPage* page);
  /// Early lock release for B-tree interior pages (high-concurrency
  /// B-tree locking, section 3 / Lehman-Yao).
  void UnlockPage(TxnId txn, uint32_t file_ref, uint64_t pageno);

  /// Flush all dirty pages and write a checkpoint record.
  Status Checkpoint();
  /// Restart recovery: redo committed work, undo losers (called by Open).
  Status Recover();

  BufferPool* pool() { return &pool_; }
  LockManager* locks() { return &locks_; }
  LogManager* log() { return &log_; }
  Kernel* kernel() { return kernel_; }
  const Stats& stats() const { return stats_; }
  uint32_t active_count() const { return active_; }
  /// Transactions still in Running/Committing/Aborting (CheckTxn: must be
  /// zero at any quiescent point).
  size_t live_txn_count() const {
    size_t n = 0;
    for (const auto& [id, st] : txns_) {
      if (st.status == TxnStatus::kRunning ||
          st.status == TxnStatus::kCommitting ||
          st.status == TxnStatus::kAborting) {
        n++;
      }
    }
    return n;
  }

 private:
  struct TxnState {
    TxnStatus status = TxnStatus::kIdle;
    Lsn last_lsn = kNullLsn;
    /// LSN of the transaction's first log record (kNullLsn until it logs
    /// one). Checkpoints take the min over live transactions as the replay
    /// low-water mark.
    Lsn first_lsn = kNullLsn;
  };

  /// Apply `image` at (page, offset) with the given record LSN; used by
  /// abort and recovery.
  Status ApplyImage(uint32_t file_ref, uint64_t pageno, uint32_t offset,
                    const std::string& image, Lsn stamp_lsn);

  Kernel* kernel_;
  Options options_;
  LogManager log_;
  BufferPool pool_;
  LockManager locks_;
  TxnIdAllocator ids_;
  std::unordered_map<TxnId, TxnState> txns_;
  uint32_t active_ = 0;
  Lsn last_checkpoint_lsn_ = 0;
  Stats stats_;
};

}  // namespace lfstx

#endif  // LFSTX_LIBTP_TXN_MANAGER_H_
